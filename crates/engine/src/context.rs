//! Execution context: storage handles, configuration, runtime counters.

use crate::cancel::CancellationToken;
use sordf_columnar::BufferPool;
use sordf_model::Dictionary;
use sordf_schema::EmergentSchema;
use sordf_storage::{BaselineStore, ClusteredStore, DeltaView};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Which plan scheme the planner uses for star patterns — the "Query Plan"
/// axis of the paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanScheme {
    /// Per-property index scans + merge self-joins (triple-store classic).
    Default,
    /// RDFscan for base stars, RDFjoin for candidate-driven stars.
    RdfScanJoin,
}

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct ExecConfig {
    pub scheme: PlanScheme,
    /// Use zone maps: page skipping within scans and min/max restriction
    /// pushdown across star joins (the "ZoneMaps" axis of Table I).
    pub zonemaps: bool,
    /// Maximum `|left| * |right|` a cartesian product (disconnected BGP)
    /// may materialize before the query fails. A cross join is almost
    /// always an authoring mistake; the budget turns a silent O(n·m) blowup
    /// into an explicit error naming the fix.
    pub cross_join_budget: u64,
    /// Evaluate stars through the scalar rowwise oracle instead of the
    /// vectorized kernels. Byte-identical results, far slower — the
    /// differential-testing executor, not a production path.
    pub rowwise: bool,
}

impl Default for ExecConfig {
    fn default() -> ExecConfig {
        ExecConfig {
            scheme: PlanScheme::RdfScanJoin,
            zonemaps: true,
            cross_join_budget: 1_000_000,
            rowwise: false,
        }
    }
}

/// The storage generation a query runs against.
pub enum StorageRef<'a> {
    /// Exhaustive permutation indexes over all triples (ParseOrder).
    Baseline(&'a BaselineStore),
    /// CS segments + irregular remainder (ParseOrder-sparse or Clustered).
    Clustered {
        store: &'a ClusteredStore,
        schema: &'a EmergentSchema,
    },
}

impl<'a> StorageRef<'a> {
    pub fn is_clustered(&self) -> bool {
        matches!(self, StorageRef::Clustered { .. })
    }

    pub fn schema(&self) -> Option<&'a EmergentSchema> {
        match self {
            StorageRef::Baseline(_) => None,
            StorageRef::Clustered { schema, .. } => Some(schema),
        }
    }
}

/// Runtime operator counters — the numbers behind the paper's Fig. 4
/// (join-effort reduction) and the locality reporting of the harnesses.
///
/// Counters are relaxed atomics so one context can be shared across morsel
/// workers (`ExecContext` is `Sync`); partial counts from workers sum
/// naturally, at no cost on the single-threaded path.
#[derive(Debug, Default)]
pub struct ExecStats {
    pub merge_joins: AtomicU64,
    pub hash_joins: AtomicU64,
    pub rdf_scans: AtomicU64,
    pub rdf_joins: AtomicU64,
    pub property_scans: AtomicU64,
    pub rows_scanned: AtomicU64,
    pub rows_emitted: AtomicU64,
    pub zonemap_pages_skipped: AtomicU64,
    /// Pages actually scanned (pinned) by the chunked scan kernels — the
    /// complement of `zonemap_pages_skipped`, and the work measure the
    /// cancellation differential tests bound: a cancelled query's page count
    /// must stop growing within one poll interval.
    pub pages_scanned: AtomicU64,
}

impl ExecStats {
    // ordering: Relaxed for every counter access in this impl — these are
    // independent statistics with no cross-counter consistency requirement;
    // per-query totals become exact at the thread joins (scope exit), which
    // synchronize for us.
    pub fn bump(counter: &AtomicU64, by: u64) {
        counter.fetch_add(by, Ordering::Relaxed);
    }

    /// Read one counter (tests, ad-hoc reporting).
    // ordering: Relaxed — see the impl-top note.
    pub fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }

    /// Total join operators executed.
    pub fn total_joins(&self) -> u64 {
        self.snapshot().total_joins()
    }

    // ordering: Relaxed — see the impl-top note; reset races with nothing
    // (callers reset between queries, not during one).
    pub fn reset(&self) {
        self.merge_joins.store(0, Ordering::Relaxed);
        self.hash_joins.store(0, Ordering::Relaxed);
        self.rdf_scans.store(0, Ordering::Relaxed);
        self.rdf_joins.store(0, Ordering::Relaxed);
        self.property_scans.store(0, Ordering::Relaxed);
        self.rows_scanned.store(0, Ordering::Relaxed);
        self.rows_emitted.store(0, Ordering::Relaxed);
        self.zonemap_pages_skipped.store(0, Ordering::Relaxed);
        self.pages_scanned.store(0, Ordering::Relaxed);
    }

    /// A plain-old-data copy of the counters.
    // ordering: Relaxed — see the impl-top note; a snapshot taken after the
    // query's worker scope exits observes every bump via the joins.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            merge_joins: self.merge_joins.load(Ordering::Relaxed),
            hash_joins: self.hash_joins.load(Ordering::Relaxed),
            rdf_scans: self.rdf_scans.load(Ordering::Relaxed),
            rdf_joins: self.rdf_joins.load(Ordering::Relaxed),
            property_scans: self.property_scans.load(Ordering::Relaxed),
            rows_scanned: self.rows_scanned.load(Ordering::Relaxed),
            rows_emitted: self.rows_emitted.load(Ordering::Relaxed),
            zonemap_pages_skipped: self.zonemap_pages_skipped.load(Ordering::Relaxed),
            pages_scanned: self.pages_scanned.load(Ordering::Relaxed),
        }
    }
}

/// Copyable snapshot of [`ExecStats`], reported by the facade and benches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub merge_joins: u64,
    pub hash_joins: u64,
    pub rdf_scans: u64,
    pub rdf_joins: u64,
    pub property_scans: u64,
    pub rows_scanned: u64,
    pub rows_emitted: u64,
    pub zonemap_pages_skipped: u64,
    pub pages_scanned: u64,
}

impl StatsSnapshot {
    /// Total join operators executed.
    pub fn total_joins(&self) -> u64 {
        self.merge_joins + self.hash_joins + self.rdf_joins
    }
}

/// Everything an operator needs at runtime.
pub struct ExecContext<'a> {
    pub pool: &'a BufferPool,
    pub dict: &'a Dictionary,
    pub storage: StorageRef<'a>,
    /// The delta view this query reads (its write snapshot), *pinned*: the
    /// context owns a share of the view, so the query stays consistent even
    /// when a concurrent writer or generation swap moves the store on —
    /// writers copy-on-write the cached view, they never mutate a pinned
    /// one. `None` when no writes are pending — every scan then skips all
    /// merge work. When set, property scans union the view's insert runs
    /// with base storage and filter its tombstones out of every
    /// base-resident value (the merged-source contract shared by the
    /// sequential, parallel and rowwise operators).
    delta: Option<Arc<DeltaView>>,
    /// Cooperative interrupt for this query, polled by the operators at
    /// bounded-work boundaries (see [`crate::cancel`]). `None` (the
    /// embedded-library default) makes every poll a no-op branch.
    cancel: Option<CancellationToken>,
    pub config: ExecConfig,
    pub stats: ExecStats,
}

/// Compile-time thread-safety audit: a context (storage handles + atomic
/// counters) must be shareable across morsel workers, and the storage layer
/// across concurrent queries.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<BufferPool>();
    assert_send_sync::<sordf_columnar::DiskManager>();
    assert_send_sync::<BaselineStore>();
    assert_send_sync::<ClusteredStore>();
    assert_send_sync::<EmergentSchema>();
    assert_send_sync::<Dictionary>();
    assert_send_sync::<DeltaView>();
    assert_send_sync::<ExecStats>();
    assert_send_sync::<ExecContext<'static>>();
};

impl<'a> ExecContext<'a> {
    pub fn new(
        pool: &'a BufferPool,
        dict: &'a Dictionary,
        storage: StorageRef<'a>,
        config: ExecConfig,
    ) -> ExecContext<'a> {
        ExecContext {
            pool,
            dict,
            storage,
            delta: None,
            cancel: None,
            config,
            stats: ExecStats::default(),
        }
    }

    /// Pin a delta view (the query's write snapshot) to this context. Empty
    /// views are dropped so the scan paths keep their zero-cost no-delta
    /// fast path.
    pub fn with_delta(mut self, delta: Option<Arc<DeltaView>>) -> ExecContext<'a> {
        self.delta = delta.filter(|d| !d.is_empty());
        self
    }

    /// The pinned delta view, if any (see [`ExecContext::with_delta`]).
    #[inline]
    pub fn delta(&self) -> Option<&DeltaView> {
        self.delta.as_deref()
    }

    /// Attach a cancellation token; operators will poll it at bounded-work
    /// boundaries and unwind to the query boundary when it trips.
    pub fn with_cancel(mut self, cancel: Option<CancellationToken>) -> ExecContext<'a> {
        self.cancel = cancel;
        self
    }

    /// The attached cancellation token, if any.
    #[inline]
    pub fn cancel_token(&self) -> Option<&CancellationToken> {
        self.cancel.as_ref()
    }

    /// Poll the cancellation token (no-op without one). Raises the
    /// [`crate::cancel::QueryInterrupted`] sentinel panic when tripped —
    /// call only from operator code below the facade's query boundary.
    #[inline]
    pub fn check_cancelled(&self) {
        if let Some(t) = &self.cancel {
            t.check();
        }
    }

    /// Are string OIDs ordered by value? True after clustering (the string
    /// pool is sorted), false on parse-order storage — ordered string
    /// comparisons must decode in that case.
    pub fn strings_value_ordered(&self) -> bool {
        // Inserts after the last reorganization may have interned new
        // strings at the end of the pool, breaking the sorted order until
        // the next reorganization re-sorts it.
        if self.delta().is_some_and(|d| d.strings_appended) {
            return false;
        }
        // Sparse clustered stores keep parse-order string OIDs too; only the
        // reorganized (dense) store sorts the pool. We detect via segments.
        match &self.storage {
            StorageRef::Baseline(_) => false,
            StorageRef::Clustered { store, .. } => store.segments.iter().all(|s| {
                matches!(
                    s.subjects,
                    sordf_storage::clustered::SubjectIds::Dense { .. }
                )
            }),
        }
    }
}
