//! The planner: star ordering, link detection, cross-star joins and the
//! zone-map cross-table pushdown of §II-D.

use crate::agg::{finalize, ResultSet};
use crate::cardest::estimate_star;
use crate::context::{ExecContext, PlanScheme};
use crate::expr::Expr;
use crate::query::{Query, VarOrOid};
use crate::scan::{SRange, Source};
use crate::star::{
    apply_filters, eval_star_default, eval_star_rdfscan, filters_bound_by, stars_of, Star,
};
use crate::table::{Table, VarId};
use sordf_model::Oid;

/// A description of the chosen plan (Fig. 4's join-effort numbers).
#[derive(Debug, Clone)]
pub struct PlanInfo {
    pub scheme: PlanScheme,
    pub n_stars: usize,
    /// Index order in which stars are evaluated.
    pub star_order: Vec<usize>,
    /// Merge self-joins inside stars (Default scheme pays these).
    pub intra_star_joins: u64,
    /// Joins linking stars (both schemes pay these).
    pub cross_star_joins: u64,
    /// Estimated cardinality per star, in evaluation order.
    pub estimates: Vec<f64>,
    /// Human-readable plan text.
    pub text: String,
}

/// Link between an evaluated result and the next star.
enum Link {
    /// Result column binds the next star's subject.
    Subject(VarId),
    /// Result column binds one of the next star's object vars.
    Object(VarId),
    None,
}

fn find_link(bound: &[VarId], star: &Star) -> Link {
    if bound.contains(&star.subject_var) {
        return Link::Subject(star.subject_var);
    }
    for p in &star.props {
        if let VarOrOid::Var(v) = p.o {
            if bound.contains(&v) {
                return Link::Object(v);
            }
        }
    }
    Link::None
}

/// Greedy star order: start from the smallest estimate; prefer connected
/// stars thereafter.
fn order_stars(cx: &ExecContext, stars: &[Star], filters: &[&Expr]) -> (Vec<usize>, Vec<f64>) {
    let ests: Vec<f64> = stars
        .iter()
        .map(|s| estimate_star(cx, s, filters))
        .collect();
    let mut remaining: Vec<usize> = (0..stars.len()).collect();
    let mut order = Vec::new();
    let mut bound: Vec<VarId> = Vec::new();
    while !remaining.is_empty() {
        let pick = remaining
            .iter()
            .enumerate()
            .min_by(|&(_, &a), &(_, &b)| {
                let conn_a =
                    !matches!(find_link(&bound, &stars[a]), Link::None) || bound.is_empty();
                let conn_b =
                    !matches!(find_link(&bound, &stars[b]), Link::None) || bound.is_empty();
                conn_b
                    .cmp(&conn_a) // connected first
                    .then(
                        ests[a]
                            .partial_cmp(&ests[b])
                            .unwrap_or(std::cmp::Ordering::Equal),
                    )
            })
            .map(|(i, _)| i)
            // sordf-lint: allow(L3) — the loop runs only while `remaining` is non-empty, so min_by_key yields a pick.
            .unwrap();
        let star_idx = remaining.remove(pick);
        bound.extend(stars[star_idx].bound_vars());
        order.push(star_idx);
    }
    let ordered_ests = order.iter().map(|&i| ests[i]).collect();
    (order, ordered_ests)
}

/// A star evaluator: how one star (with filters, optional candidate
/// subjects, and a subject range) becomes a binding table. The planner is
/// parameterized over this so the same plan logic drives the sequential
/// operators, the morsel-parallel operators ([`crate::parallel`]), and the
/// value-at-a-time reference operators ([`crate::rowwise`]) in differential
/// tests.
pub type StarEvalFn<'f> =
    dyn Fn(&ExecContext, &Star, &[&Expr], Option<&[Oid]>, SRange) -> Table + Sync + 'f;

/// Execute a query end to end, returning the finalized result set.
pub fn execute(cx: &ExecContext, query: &Query) -> ResultSet {
    execute_with(cx, query, &eval_one_star)
}

/// Execute with a custom star evaluator (see [`StarEvalFn`]).
pub fn execute_with(cx: &ExecContext, query: &Query, eval: &StarEvalFn) -> ResultSet {
    let (q, table) = execute_plan(cx, query, eval);
    finalize(cx, &q, &table)
}

/// Run the planning + join pipeline, returning the normalized query (fresh
/// variables introduced by star rewriting) and the final binding table,
/// ready for [`finalize`]. Shared by [`execute`] and the parallel executor
/// (which finalizes with a merging aggregation).
pub(crate) fn execute_plan(cx: &ExecContext, query: &Query, eval: &StarEvalFn) -> (Query, Table) {
    let mut q = query.clone();
    let (stars, extra_filters) = stars_of(&mut q);
    // Flatten conjunctions so every `var OP const` conjunct is individually
    // visible to pushdown and the enforced-filter analysis.
    let mut all_filters: Vec<Expr> = Vec::new();
    for f in q.filters.iter().chain(extra_filters.iter()) {
        for c in f.conjuncts() {
            all_filters.push(c.clone());
        }
    }
    let filter_refs: Vec<&Expr> = all_filters.iter().collect();

    if stars.is_empty() {
        return (q, Table::default());
    }

    let (order, _ests) = order_stars(cx, &stars, &filter_refs);
    let mut result: Option<Table> = None;

    for &si in &order {
        let star = &stars[si];
        let star_table = match &result {
            None => eval(cx, star, &filter_refs, None, None),
            Some(res) => {
                match find_link(&res.vars, star) {
                    Link::Subject(v) => {
                        // sordf-lint: allow(L3) — find_link returned a var that is present in `res.vars`.
                        let lc = res.col_of(v).unwrap();
                        let link_vals = res.distinct_col(lc);
                        match cx.config.scheme {
                            PlanScheme::RdfScanJoin => {
                                // RDFjoin: candidate-driven star evaluation.
                                eval(cx, star, &filter_refs, Some(&link_vals), None)
                            }
                            PlanScheme::Default => {
                                // Zone-map pushdown: restrict the probed
                                // star's scans to the candidate OID range.
                                let s_range = if cx.config.zonemaps && !link_vals.is_empty() {
                                    Some((
                                        // sordf-lint: allow(L3) — guarded by !link_vals.is_empty() above.
                                        link_vals.first().unwrap().raw(),
                                        // sordf-lint: allow(L3) — guarded by !link_vals.is_empty() above.
                                        link_vals.last().unwrap().raw(),
                                    ))
                                } else {
                                    None
                                };
                                eval(cx, star, &filter_refs, None, s_range)
                            }
                        }
                    }
                    Link::Object(v) => {
                        // Zone-map sideways information passing (§II-D): the
                        // link variable is an object column of this star
                        // (typically an FK). Restrict it to the [min, max]
                        // of the already-bound values; the scan layer turns
                        // this into POS ranges / zone-map page skipping —
                        // e.g. a shipdate restriction on LINEITEM reaching
                        // ORDERS through l_orderkey's zone maps.
                        if cx.config.zonemaps {
                            // sordf-lint: allow(L3) — find_link returned a var that is present in `res.vars`.
                            let lc = res.col_of(v).unwrap();
                            let vals = res.distinct_col(lc);
                            if !vals.is_empty() {
                                // sordf-lint: allow(L3) — guarded by !vals.is_empty() above.
                                let lo = *vals.first().unwrap();
                                // sordf-lint: allow(L3) — guarded by !vals.is_empty() above.
                                let hi = *vals.last().unwrap();
                                let ge = Expr::cmp(
                                    Expr::Var(v),
                                    crate::expr::CmpOp::Ge,
                                    Expr::Const(lo),
                                );
                                let le = Expr::cmp(
                                    Expr::Var(v),
                                    crate::expr::CmpOp::Le,
                                    Expr::Const(hi),
                                );
                                let mut narrowed: Vec<&Expr> = filter_refs.clone();
                                narrowed.push(&ge);
                                narrowed.push(&le);
                                eval(cx, star, &narrowed, None, None)
                            } else {
                                eval(cx, star, &filter_refs, None, None)
                            }
                        } else {
                            eval(cx, star, &filter_refs, None, None)
                        }
                    }
                    Link::None => eval(cx, star, &filter_refs, None, None),
                }
            }
        };

        result = Some(match result {
            None => star_table,
            Some(res) => match find_link(&res.vars, star) {
                Link::Subject(v) | Link::Object(v) => {
                    // sordf-lint: allow(L3) — find_link returned a var present in both tables' vars.
                    let lc = res.col_of(v).unwrap();
                    // sordf-lint: allow(L3) — find_link returned a var present in both tables' vars.
                    let rc = star_table.col_of(v).unwrap();
                    crate::join::hash_join(cx, &res, lc, &star_table, rc)
                }
                Link::None => cross_join(&res, &star_table),
            },
        });
        // sordf-lint: allow(L3) — `result` was assigned Some(..) directly above.
        if result.as_ref().unwrap().is_empty() {
            break;
        }
    }

    let mut table = result.unwrap_or_default();
    // Remaining (cross-star) filters.
    let remaining = filters_bound_by(&all_filters, &table.vars);
    apply_filters(cx, &mut table, &remaining);
    (q, table)
}

fn eval_one_star(
    cx: &ExecContext,
    star: &Star,
    filters: &[&Expr],
    candidates: Option<&[Oid]>,
    s_range: SRange,
) -> Table {
    match cx.config.scheme {
        PlanScheme::Default => {
            eval_star_default(cx, star, filters, candidates, s_range, Source::Full)
        }
        PlanScheme::RdfScanJoin => eval_star_rdfscan(cx, star, filters, candidates, s_range),
    }
}

/// Cartesian product for disconnected BGPs (rare; kept simple).
fn cross_join(left: &Table, right: &Table) -> Table {
    let mut vars = left.vars.clone();
    vars.extend(&right.vars);
    let mut out = Table::empty(vars);
    for i in 0..left.len() {
        for j in 0..right.len() {
            let mut row = left.row(i);
            row.extend(right.row(j));
            out.push_row(&row);
        }
    }
    out
}

/// Describe the plan without executing it.
pub fn explain(cx: &ExecContext, query: &Query) -> PlanInfo {
    let mut q = query.clone();
    let (stars, extra_filters) = stars_of(&mut q);
    let mut all_filters: Vec<Expr> = Vec::new();
    for f in q.filters.iter().chain(extra_filters.iter()) {
        for c in f.conjuncts() {
            all_filters.push(c.clone());
        }
    }
    let filter_refs: Vec<&Expr> = all_filters.iter().collect();
    let (order, estimates) = order_stars(cx, &stars, &filter_refs);

    let intra: u64 = match cx.config.scheme {
        PlanScheme::Default => stars
            .iter()
            .map(|s| s.props.len().saturating_sub(1) as u64)
            .sum(),
        PlanScheme::RdfScanJoin => 0,
    };
    let cross = stars.len().saturating_sub(1) as u64;

    let mut text = String::new();
    use std::fmt::Write;
    let _ = writeln!(
        text,
        "plan: {:?}, zonemaps={}, {} star(s), {} intra-star join(s), {} cross-star join(s)",
        cx.config.scheme,
        cx.config.zonemaps,
        stars.len(),
        intra,
        cross
    );
    for (pos, &si) in order.iter().enumerate() {
        let star = &stars[si];
        let op = match (cx.config.scheme, pos) {
            (PlanScheme::Default, _) => "IdxScan+MergeJoin",
            (PlanScheme::RdfScanJoin, 0) => "RDFscan",
            (PlanScheme::RdfScanJoin, _) => "RDFjoin",
        };
        let _ = writeln!(
            text,
            "  star {} [{}]: subject {}, {} patterns, est {:.1} rows",
            pos,
            op,
            q.vars
                .get(star.subject_var.0 as usize)
                .map(|s| s.as_str())
                .unwrap_or("?"),
            star.props.len(),
            estimates[pos],
        );
    }
    PlanInfo {
        scheme: cx.config.scheme,
        n_stars: stars.len(),
        star_order: order,
        intra_star_joins: intra,
        cross_star_joins: cross,
        estimates,
        text,
    }
}
