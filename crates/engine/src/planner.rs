//! The executor of physical plans: candidate-driven RDFjoins, zone-map
//! cross-table pushdown (§II-D), multi-variable hash joins and guarded
//! cross products — driven by the cost-based [`crate::optimizer`].
//!
//! The pipeline is prepare → optimize → execute: [`crate::plan::prepare`]
//! normalizes the query into a [`LogicalPlan`], [`crate::optimizer::optimize`]
//! lowers it to a [`PhysicalPlan`] (star order, access path and join
//! strategy per step), and [`execute_physical`] interprets the steps
//! against a pluggable star evaluator ([`StarEvalFn`]) — which is how the
//! sequential operators, the morsel-parallel operators and the rowwise
//! reference operators all run the *same* plan.

use crate::agg::{finalize, ResultSet};
use crate::context::ExecContext;
use crate::expr::Expr;
use crate::optimizer::optimize;
use crate::plan::{prepare, JoinStrategy, LogicalPlan, PhysicalPlan, StarAccess};
use crate::query::Query;
use crate::scan::{SRange, Source};
use crate::star::{apply_filters, eval_star_default, eval_star_rdfscan, filters_bound_by, Star};
use crate::table::Table;
use sordf_model::Oid;

/// One step of an explained plan: the operator choices and the optimizer's
/// expectations, plus (after EXPLAIN ANALYZE) what actually happened.
#[derive(Debug, Clone)]
pub struct StepInfo {
    /// Star index (into the logical plan's star list).
    pub star: usize,
    /// The star's subject variable name.
    pub subject: String,
    /// Triple patterns in the star.
    pub n_props: usize,
    /// Chosen access path (EXPLAIN operator name).
    pub access: &'static str,
    /// Chosen join strategy (EXPLAIN operator name).
    pub join: &'static str,
    /// All join variables (names), not just the primary link.
    pub join_vars: Vec<String>,
    /// Estimated rows of the star's own scan.
    pub est_star_rows: f64,
    /// Estimated rows bound after joining with the prefix.
    pub est_rows: f64,
    /// Cost the optimizer charged to this step.
    pub cost: f64,
    /// Rows actually bound after this step (EXPLAIN ANALYZE only).
    pub actual_rows: Option<u64>,
}

/// A description of the chosen plan (Fig. 4's join-effort numbers plus the
/// optimizer's per-step choices).
#[derive(Debug, Clone)]
pub struct PlanInfo {
    pub scheme: crate::context::PlanScheme,
    pub n_stars: usize,
    /// Index order in which stars are evaluated.
    pub star_order: Vec<usize>,
    /// Merge self-joins inside stars (paid by IdxScan+MergeJoin steps).
    pub intra_star_joins: u64,
    /// Joins linking stars (both schemes pay these).
    pub cross_star_joins: u64,
    /// Estimated cardinality per star, in evaluation order.
    pub estimates: Vec<f64>,
    /// Per-step operator choices, in evaluation order.
    pub steps: Vec<StepInfo>,
    /// Total cost of the chosen plan (the quantity the optimizer minimized).
    pub total_cost: f64,
    /// Human-readable plan text.
    pub text: String,
}

/// A star evaluator: how one star (with a chosen access path, filters,
/// optional candidate subjects, and a subject range) becomes a binding
/// table. The executor is parameterized over this so the same physical plan
/// drives the sequential operators, the morsel-parallel operators
/// ([`crate::parallel`]), and the value-at-a-time reference operators
/// ([`crate::rowwise`]) in differential tests.
pub type StarEvalFn<'f> =
    dyn Fn(&ExecContext, &Star, StarAccess, &[&Expr], Option<&[Oid]>, SRange) -> Table + Sync + 'f;

/// Execute a query end to end, returning the finalized result set.
pub fn execute(cx: &ExecContext, query: &Query) -> ResultSet {
    execute_with(cx, query, &eval_one_star)
}

/// Execute with a custom star evaluator (see [`StarEvalFn`]).
pub fn execute_with(cx: &ExecContext, query: &Query, eval: &StarEvalFn) -> ResultSet {
    let (q, table) = execute_plan(cx, query, eval);
    finalize(cx, &q, &table)
}

/// Execute an already-optimized physical plan with the sequential operators
/// and finalize (the plan-cache fast path: prepare and optimize skipped).
pub fn execute_physical_seq(
    cx: &ExecContext,
    q: &Query,
    lp: &LogicalPlan,
    pp: &PhysicalPlan,
) -> ResultSet {
    let table = execute_physical(cx, lp, pp, &eval_one_star, None);
    finalize(cx, q, &table)
}

/// Run prepare → optimize → execute, returning the normalized query (fresh
/// variables introduced by star rewriting) and the final binding table,
/// ready for [`finalize`]. Shared by [`execute`] and the parallel executor
/// (which finalizes with a merging aggregation).
pub(crate) fn execute_plan(cx: &ExecContext, query: &Query, eval: &StarEvalFn) -> (Query, Table) {
    let (q, lp) = prepare(query);
    let pp = optimize(cx, &lp);
    let table = execute_physical(cx, &lp, &pp, eval, None);
    (q, table)
}

/// Execute an already-optimized physical plan against a star evaluator.
/// For a fixed plan the output table is byte-identical across evaluators.
/// `actuals`, when given, receives the bound row count after every step
/// (EXPLAIN ANALYZE); steps short-circuited by an empty prefix record 0.
pub fn execute_physical(
    cx: &ExecContext,
    lp: &LogicalPlan,
    pp: &PhysicalPlan,
    eval: &StarEvalFn,
    mut actuals: Option<&mut Vec<u64>>,
) -> Table {
    let filter_refs: Vec<&Expr> = lp.filters.iter().collect();
    let mut result: Option<Table> = None;

    for step in &pp.steps {
        // Per-step cancellation poll: joins between stars can dominate a
        // query even when every scan underneath already polls per page.
        cx.check_cancelled();
        let star = &lp.stars[step.star];
        let star_table = match (&result, &step.join) {
            (None, _) => eval(cx, star, step.access, &filter_refs, None, None),
            (Some(res), JoinStrategy::Candidates { var }) => {
                // RDFjoin: the prefix's distinct link values drive the
                // star's evaluation directly.
                // sordf-lint: allow(L3) — the optimizer only picks a link var bound by the prefix.
                let lc = res.col_of(*var).unwrap();
                let link_vals = res.distinct_col(lc);
                eval(cx, star, step.access, &filter_refs, Some(&link_vals), None)
            }
            (Some(res), JoinStrategy::SubjectRange { var }) => {
                // Zone-map pushdown: restrict the probed star's scans to
                // the candidate OID range.
                // sordf-lint: allow(L3) — the optimizer only picks a link var bound by the prefix.
                let lc = res.col_of(*var).unwrap();
                let link_vals = res.distinct_col(lc);
                let s_range = if link_vals.is_empty() {
                    None
                } else {
                    Some((
                        // sordf-lint: allow(L3) — guarded by !link_vals.is_empty() above.
                        link_vals.first().unwrap().raw(),
                        // sordf-lint: allow(L3) — guarded by !link_vals.is_empty() above.
                        link_vals.last().unwrap().raw(),
                    ))
                };
                eval(cx, star, step.access, &filter_refs, None, s_range)
            }
            (Some(res), JoinStrategy::ObjectRange { var }) => {
                // Zone-map sideways information passing (§II-D): the link
                // variable is an object column of this star (typically an
                // FK). Restrict it to the [min, max] of the already-bound
                // values; the scan layer turns this into POS ranges /
                // zone-map page skipping — e.g. a shipdate restriction on
                // LINEITEM reaching ORDERS through l_orderkey's zone maps.
                // sordf-lint: allow(L3) — the optimizer only picks a link var bound by the prefix.
                let lc = res.col_of(*var).unwrap();
                let vals = res.distinct_col(lc);
                if vals.is_empty() {
                    eval(cx, star, step.access, &filter_refs, None, None)
                } else {
                    // sordf-lint: allow(L3) — guarded by !vals.is_empty() above.
                    let lo = *vals.first().unwrap();
                    // sordf-lint: allow(L3) — guarded by !vals.is_empty() above.
                    let hi = *vals.last().unwrap();
                    let ge = Expr::cmp(Expr::Var(*var), crate::expr::CmpOp::Ge, Expr::Const(lo));
                    let le = Expr::cmp(Expr::Var(*var), crate::expr::CmpOp::Le, Expr::Const(hi));
                    let mut narrowed: Vec<&Expr> = filter_refs.clone();
                    narrowed.push(&ge);
                    narrowed.push(&le);
                    eval(cx, star, step.access, &narrowed, None, None)
                }
            }
            (Some(_), _) => eval(cx, star, step.access, &filter_refs, None, None),
        };

        result = Some(match result {
            None => star_table,
            Some(res) => {
                if step.join_vars.is_empty() {
                    cross_join(cx, &res, &star_table)
                } else {
                    // Join on *all* shared variables — stars sharing both
                    // subject and object variables must agree on every one.
                    crate::join::hash_join_on(cx, &res, &star_table, &step.join_vars)
                }
            }
        });
        // sordf-lint: allow(L3) — `result` was assigned Some(..) directly above.
        let cur = result.as_ref().unwrap();
        if let Some(a) = actuals.as_deref_mut() {
            a.push(cur.len() as u64);
        }
        if cur.is_empty() {
            break;
        }
    }
    if let Some(a) = actuals {
        // An empty prefix short-circuits: the skipped joins bind 0 rows.
        a.resize(pp.steps.len(), 0);
    }

    let mut table = result.unwrap_or_default();
    // Remaining (cross-star) filters.
    let remaining = filters_bound_by(&lp.filters, &table.vars);
    apply_filters(cx, &mut table, &remaining);
    table
}

/// The sequential star evaluator: dispatches on the plan's chosen access
/// path (not the scheme — the optimizer already folded the scheme and the
/// storage layout into that choice).
pub(crate) fn eval_one_star(
    cx: &ExecContext,
    star: &Star,
    access: StarAccess,
    filters: &[&Expr],
    candidates: Option<&[Oid]>,
    s_range: SRange,
) -> Table {
    if cx.config.rowwise {
        return crate::rowwise::eval_star_rowwise(cx, star, access, filters, candidates, s_range);
    }
    match access {
        StarAccess::PropMerge => {
            eval_star_default(cx, star, filters, candidates, s_range, Source::Full)
        }
        StarAccess::RdfScan => eval_star_rdfscan(cx, star, filters, candidates, s_range),
    }
}

/// Cartesian product for disconnected BGPs, guarded by
/// [`crate::context::ExecConfig::cross_join_budget`]: a disconnected BGP
/// multiplies result sizes, so an oversized product fails the query instead
/// of silently going O(n·m).
fn cross_join(cx: &ExecContext, left: &Table, right: &Table) -> Table {
    let pairs = left.len() as u128 * right.len() as u128;
    if pairs > cx.config.cross_join_budget as u128 {
        // sordf-lint: allow(L3) — deliberate query-boundary failure; the
        // facade's catch_unwind turns this into Error::Exec.
        panic!(
            "cross join of {} x {} rows exceeds cross_join_budget={}; \
             connect the patterns with a shared variable or raise the budget",
            left.len(),
            right.len(),
            cx.config.cross_join_budget
        );
    }
    let mut vars = left.vars.clone();
    vars.extend(&right.vars);
    let mut out = Table::empty(vars);
    for i in 0..left.len() {
        for j in 0..right.len() {
            let mut row = left.row(i);
            row.extend(right.row(j));
            out.push_row(&row);
        }
    }
    out
}

/// Build the EXPLAIN description of an optimized plan. `actuals`, when
/// given, carries the per-step bound row counts of an actual execution.
fn plan_info(q: &Query, lp: &LogicalPlan, pp: &PhysicalPlan, actuals: Option<&[u64]>) -> PlanInfo {
    let var_name = |v: crate::table::VarId| {
        q.vars
            .get(v.0 as usize)
            .map(|s| s.as_str())
            .unwrap_or("?")
            .to_string()
    };
    let steps: Vec<StepInfo> = pp
        .steps
        .iter()
        .enumerate()
        .map(|(pos, st)| StepInfo {
            star: st.star,
            subject: var_name(lp.stars[st.star].subject_var),
            n_props: lp.stars[st.star].props.len(),
            access: st.access.label(),
            join: st.join.label(),
            join_vars: st.join_vars.iter().map(|&v| var_name(v)).collect(),
            est_star_rows: st.est_star_rows,
            est_rows: st.est_rows,
            cost: st.cost,
            actual_rows: actuals.and_then(|a| a.get(pos).copied()),
        })
        .collect();

    // Fig. 4's join-effort accounting: every IdxScan+MergeJoin step pays
    // props-1 merge self-joins; RDFscan steps pay none.
    let intra: u64 = steps
        .iter()
        .filter(|s| s.access == StarAccess::PropMerge.label())
        .map(|s| s.n_props.saturating_sub(1) as u64)
        .sum();
    let cross = lp.stars.len().saturating_sub(1) as u64;

    let mut text = String::new();
    use std::fmt::Write;
    let _ = writeln!(
        text,
        "plan: {:?}, zonemaps={}, {} star(s), {} intra-star join(s), {} cross-star join(s), cost {:.1}",
        pp.scheme,
        pp.zonemaps,
        lp.stars.len(),
        intra,
        cross,
        pp.total_cost,
    );
    for (pos, s) in steps.iter().enumerate() {
        let join = if s.join_vars.is_empty() {
            s.join.to_string()
        } else {
            format!("{}(?{})", s.join, s.join_vars.join(", ?"))
        };
        let _ = write!(
            text,
            "  star {} [{}]: subject {}, {} patterns, join {}, cost {:.1}, est {:.1} rows",
            pos, s.access, s.subject, s.n_props, join, s.cost, s.est_rows,
        );
        match s.actual_rows {
            Some(n) => {
                let _ = writeln!(text, ", actual {n} rows");
            }
            None => {
                let _ = writeln!(text);
            }
        }
    }

    PlanInfo {
        scheme: pp.scheme,
        n_stars: lp.stars.len(),
        star_order: pp.star_order(),
        intra_star_joins: intra,
        cross_star_joins: cross,
        estimates: steps.iter().map(|s| s.est_star_rows).collect(),
        steps,
        total_cost: pp.total_cost,
        text,
    }
}

/// Describe the chosen plan without executing it.
pub fn explain(cx: &ExecContext, query: &Query) -> PlanInfo {
    let (q, lp) = prepare(query);
    let pp = optimize(cx, &lp);
    plan_info(&q, &lp, &pp, None)
}

/// Execute the chosen plan and describe it with per-step actual
/// cardinalities alongside the estimates (EXPLAIN ANALYZE).
pub fn explain_analyze(cx: &ExecContext, query: &Query) -> (PlanInfo, ResultSet) {
    let (q, lp) = prepare(query);
    let pp = optimize(cx, &lp);
    let mut actuals = Vec::with_capacity(pp.steps.len());
    let table = execute_physical(cx, &lp, &pp, &eval_one_star, Some(&mut actuals));
    let info = plan_info(&q, &lp, &pp, Some(&actuals));
    let rs = finalize(cx, &q, &table);
    (info, rs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{ExecConfig, StorageRef};
    use crate::table::VarId;
    use sordf_columnar::{BufferPool, DiskManager};
    use sordf_model::Dictionary;
    use std::sync::Arc;

    fn small_table(var: u16, n: u64) -> Table {
        let mut t = Table::empty(vec![VarId(var)]);
        for i in 0..n {
            t.push_row(&[Oid::iri(i + 1)]);
        }
        t
    }

    #[test]
    fn cross_join_within_budget_and_over_budget() {
        let dm = Arc::new(DiskManager::temp().unwrap());
        let store = sordf_storage::BaselineStore::build(&dm, &[]);
        let pool = Box::leak(Box::new(BufferPool::new(Arc::clone(&dm), 16)));
        let dict = Box::leak(Box::new(Dictionary::new()));
        let cx = ExecContext::new(
            pool,
            dict,
            StorageRef::Baseline(&store),
            ExecConfig {
                cross_join_budget: 12,
                ..ExecConfig::default()
            },
        );
        let left = small_table(0, 3);
        let right = small_table(1, 4);
        // 3 x 4 = 12 pairs: exactly at the budget — allowed.
        let out = cross_join(&cx, &left, &right);
        assert_eq!(out.len(), 12);
        assert_eq!(out.vars, vec![VarId(0), VarId(1)]);

        // 3 x 5 = 15 pairs: over budget — fails loudly instead of running.
        let right5 = small_table(1, 5);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cross_join(&cx, &left, &right5)
        }));
        assert!(err.is_err(), "over-budget cross join must not run");
        let msg = err
            .unwrap_err()
            .downcast::<String>()
            .map(|b| *b)
            .unwrap_or_default();
        assert!(
            msg.contains("cross_join_budget"),
            "panic names the budget: {msg}"
        );
    }
}
