//! The plan IR: an explicit two-level representation of a BGP query.
//!
//! The **logical plan** is what today's `stars_of` rewrite discovers — the
//! star decomposition of the BGP plus flattened filter conjuncts — wrapped
//! in a small operator tree (star scan / unordered join set / filter /
//! project / aggregate). It says *what* to compute, never in which order.
//!
//! The **physical plan** is what the optimizer ([`crate::optimizer`])
//! lowers it to: one [`PhysicalStep`] per star, in execution order, each
//! carrying the chosen access path ([`StarAccess`]: RDFscan over aligned CS
//! segments vs per-property IdxScan+MergeJoin), the join strategy for the
//! edge that connects it to the already-bound prefix ([`JoinStrategy`]:
//! candidate-driven RDFjoin, zone-map range pushdown, plain hash join, or a
//! guarded cross product), the *complete* set of shared join variables, and
//! the optimizer's cost/cardinality estimates. All three executors — the
//! sequential planner, the morsel-parallel executor and the rowwise oracle
//! — consume the same `PhysicalPlan` through the [`crate::planner::StarEvalFn`]
//! seam, so a plan fixes the result bytes regardless of executor.

use crate::context::PlanScheme;
use crate::expr::Expr;
use crate::query::Query;
use crate::star::{stars_of, Star};
use crate::table::VarId;

/// A logical operator. The join of a multi-star BGP is represented as an
/// *unordered* set ([`LogicalOp::JoinSet`]) — choosing the order and the
/// physical operator per edge is exactly the optimizer's job.
#[derive(Debug, Clone)]
pub enum LogicalOp {
    /// Evaluate one star of the BGP (index into [`LogicalPlan::stars`]).
    StarScan { star: usize },
    /// Natural join of the inputs on their shared variables, order
    /// unspecified.
    JoinSet { inputs: Vec<LogicalOp> },
    /// Apply filter conjuncts (indices into [`LogicalPlan::filters`]).
    /// Lowering pushes single-star conjuncts into the star scans; the rest
    /// run after the joins.
    Filter {
        input: Box<LogicalOp>,
        filters: Vec<usize>,
    },
    /// Project to the SELECT list.
    Project { input: Box<LogicalOp> },
    /// Group/aggregate into the SELECT list.
    Aggregate { input: Box<LogicalOp> },
}

/// The logical plan: the star decomposition plus the operator tree above it.
#[derive(Debug, Clone)]
pub struct LogicalPlan {
    /// The stars of the BGP, in discovery order. Physical steps reference
    /// them by index.
    pub stars: Vec<Star>,
    /// Every filter conjunct, flattened: the query's FILTERs plus the
    /// equality filters introduced by the duplicate-variable star rewrite.
    pub filters: Vec<Expr>,
    /// The operator tree: Aggregate|Project ∘ Filter? ∘ JoinSet|StarScan.
    pub root: LogicalOp,
}

/// Normalize a query into its logical plan. Returns the rewritten query
/// (star rewriting introduces fresh variables for duplicate uses) together
/// with the plan; the rewritten query is what [`crate::agg::finalize`]
/// must see.
pub fn prepare(query: &Query) -> (Query, LogicalPlan) {
    let mut q = query.clone();
    let (stars, extra_filters) = stars_of(&mut q);
    // Flatten conjunctions so every `var OP const` conjunct is individually
    // visible to pushdown and the enforced-filter analysis.
    let mut filters: Vec<Expr> = Vec::new();
    for f in q.filters.iter().chain(extra_filters.iter()) {
        for c in f.conjuncts() {
            filters.push(c.clone());
        }
    }
    let scans: Vec<LogicalOp> = (0..stars.len())
        .map(|star| LogicalOp::StarScan { star })
        .collect();
    let mut root = match scans.len() {
        0 | 1 => scans
            .into_iter()
            .next()
            .unwrap_or(LogicalOp::JoinSet { inputs: Vec::new() }),
        _ => LogicalOp::JoinSet { inputs: scans },
    };
    if !filters.is_empty() {
        root = LogicalOp::Filter {
            input: Box::new(root),
            filters: (0..filters.len()).collect(),
        };
    }
    root = if q.has_aggregates() {
        LogicalOp::Aggregate {
            input: Box::new(root),
        }
    } else {
        LogicalOp::Project {
            input: Box::new(root),
        }
    };
    (
        q,
        LogicalPlan {
            stars,
            filters,
            root,
        },
    )
}

/// How one star becomes a binding table — the paper's two access paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StarAccess {
    /// Aligned multi-column scan over CS segments (RDFscan; RDFjoin when
    /// driven by candidates). Requires clustered storage.
    RdfScan,
    /// One index scan per property, assembled with merge self-joins on the
    /// subject (the triple-store classic).
    PropMerge,
}

impl StarAccess {
    /// The operator name EXPLAIN prints.
    pub fn label(&self) -> &'static str {
        match self {
            StarAccess::RdfScan => "RDFscan",
            StarAccess::PropMerge => "IdxScan+MergeJoin",
        }
    }
}

/// How a star joins the already-bound prefix of the plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JoinStrategy {
    /// First star: nothing to join with.
    Seed,
    /// Candidate-driven RDFjoin: the prefix's distinct values of `var`
    /// (the star's subject) drive the star's evaluation directly.
    Candidates { var: VarId },
    /// Zone-map pushdown on the star's subject: restrict its scans to the
    /// `[min, max]` OID range of the prefix's values, then hash join.
    SubjectRange { var: VarId },
    /// Zone-map sideways information passing (§II-D) on an object column:
    /// restrict the star's `var` column to the prefix's `[min, max]` via
    /// injected range filters, then hash join.
    ObjectRange { var: VarId },
    /// Plain hash join on `var` (no pushdown into the star's scan).
    Hash { var: VarId },
    /// Cartesian product — disconnected BGP components. Guarded by
    /// [`crate::context::ExecConfig::cross_join_budget`].
    Cross,
}

impl JoinStrategy {
    /// The primary link variable, if any.
    pub fn var(&self) -> Option<VarId> {
        match self {
            JoinStrategy::Candidates { var }
            | JoinStrategy::SubjectRange { var }
            | JoinStrategy::ObjectRange { var } => Some(*var),
            JoinStrategy::Hash { var } => Some(*var),
            JoinStrategy::Seed | JoinStrategy::Cross => None,
        }
    }

    /// The strategy name EXPLAIN prints (without the variable).
    pub fn label(&self) -> &'static str {
        match self {
            JoinStrategy::Seed => "seed",
            JoinStrategy::Candidates { .. } => "RDFjoin",
            JoinStrategy::SubjectRange { .. } => "zm-subject-range",
            JoinStrategy::ObjectRange { .. } => "zm-object-range",
            JoinStrategy::Hash { .. } => "hash",
            JoinStrategy::Cross => "cross",
        }
    }
}

/// One executed star in plan order: which star, how it is scanned, how it
/// joins the prefix, and what the optimizer expected of it.
#[derive(Debug, Clone)]
pub struct PhysicalStep {
    /// Index into [`LogicalPlan::stars`].
    pub star: usize,
    pub access: StarAccess,
    pub join: JoinStrategy,
    /// Every variable shared with the bound prefix. The join keys on all of
    /// them (not just the primary link variable), so stars sharing both
    /// subject and object variables produce consistent bindings.
    pub join_vars: Vec<VarId>,
    /// Estimated rows this star's scan produces on its own.
    pub est_star_rows: f64,
    /// Estimated rows bound after joining with the prefix.
    pub est_rows: f64,
    /// Cost charged to this step (scan + join work, in cost-model units).
    pub cost: f64,
}

/// The executable plan: steps in execution order plus the configuration
/// they were optimized under.
#[derive(Debug, Clone)]
pub struct PhysicalPlan {
    pub scheme: PlanScheme,
    pub zonemaps: bool,
    pub steps: Vec<PhysicalStep>,
    /// Sum of the step costs (the quantity the optimizer minimized).
    pub total_cost: f64,
}

impl PhysicalPlan {
    /// Star indices in execution order.
    pub fn star_order(&self) -> Vec<usize> {
        self.steps.iter().map(|s| s.star).collect()
    }

    /// A stable, float-free structural rendering for golden snapshot tests:
    /// operators, join strategies and key sets — not costs or estimates,
    /// which may legitimately drift with the estimator.
    pub fn signature(&self, vars: &[String]) -> String {
        use std::fmt::Write;
        let name = |v: VarId| {
            vars.get(v.0 as usize)
                .map(|s| format!("?{s}"))
                .unwrap_or_else(|| format!("?#{}", v.0))
        };
        let mut out = format!(
            "scheme={:?} zonemaps={} steps={}\n",
            self.scheme,
            self.zonemaps,
            self.steps.len()
        );
        for (i, st) in self.steps.iter().enumerate() {
            let join = match st.join.var() {
                Some(v) => format!("{}({})", st.join.label(), name(v)),
                None => st.join.label().to_string(),
            };
            let keys: Vec<String> = st.join_vars.iter().map(|&v| name(v)).collect();
            let _ = writeln!(
                out,
                "  {i}: star {} access={} join={} on=[{}]",
                st.star,
                st.access.label(),
                join,
                keys.join(",")
            );
        }
        out
    }
}
