//! Per-property access paths: s-sorted (subject, object) streams.
//!
//! This is the "IdxScan" of the paper's Fig. 4. On baseline storage a
//! property scan is a PSO/POS prefix lookup; on clustered storage the
//! stream is stitched together from the class segments that store the
//! property (the aligned "stretches" of the clustered PSO table) plus the
//! irregular remainder. Object restrictions use the POS permutation, the
//! segment sort order, or zone maps, depending on what is available.
//!
//! When the context carries a [`sordf_storage::DeltaView`] (pending writes),
//! every property scan becomes a *merged source*: base-resident pairs are
//! filtered against the view's tombstones and the view's visible insert
//! runs are unioned in (`apply_delta_pairs`) before the stream is sorted —
//! so downstream operators see one (s, o)-sorted stream regardless of how
//! many physical sources contributed.

use crate::context::{ExecContext, ExecStats, StorageRef};
use sordf_model::{Oid, Triple};
use sordf_storage::clustered::SubjectIds;
use sordf_storage::{BaselineStore, Order};

/// Object-side restriction pushed into a scan (raw OID bounds, inclusive).
#[derive(Debug, Clone, Copy, Default)]
pub struct ORestrict {
    pub eq: Option<Oid>,
    pub range: Option<(u64, u64)>,
}

impl ORestrict {
    pub fn none() -> ORestrict {
        ORestrict::default()
    }

    pub fn eq(o: Oid) -> ORestrict {
        ORestrict {
            eq: Some(o),
            range: None,
        }
    }

    pub fn is_none(&self) -> bool {
        self.eq.is_none() && self.range.is_none()
    }

    /// Does a raw value pass?
    #[inline]
    pub fn accepts(&self, v: u64) -> bool {
        if let Some(eq) = self.eq {
            if v != eq.raw() {
                return false;
            }
        }
        if let Some((lo, hi)) = self.range {
            if v < lo || v > hi {
                return false;
            }
        }
        true
    }

    /// Effective raw bounds (for zone-map pruning).
    pub fn bounds(&self) -> (u64, u64) {
        match (self.eq, self.range) {
            (Some(eq), _) => (eq.raw(), eq.raw()),
            (None, Some((lo, hi))) => (lo, hi),
            (None, None) => (0, u64::MAX),
        }
    }
}

/// Subject-side restriction (raw OID bounds, inclusive) — used by the
/// zone-map cross-table pushdown.
pub type SRange = Option<(u64, u64)>;

/// Which part of the storage to read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// Everything (segments + irregular, or the whole baseline store).
    Full,
    /// Only the irregular triple table of a clustered store.
    IrregularOnly,
}

/// Scan all (s, o) pairs of predicate `p`, restricted by `restrict` on the
/// object and `s_range` on the subject. The result is sorted by (s, o).
pub fn scan_property(
    cx: &ExecContext,
    p: Oid,
    restrict: &ORestrict,
    s_range: SRange,
    source: Source,
) -> Vec<(Oid, Oid)> {
    cx.check_cancelled();
    ExecStats::bump(&cx.stats.property_scans, 1);
    let mut out = match (&cx.storage, source) {
        (StorageRef::Baseline(store), _) => scan_baseline(cx, store, p, restrict, s_range),
        (StorageRef::Clustered { store, .. }, Source::IrregularOnly) => {
            scan_baseline(cx, &store.irregular, p, restrict, s_range)
        }
        (StorageRef::Clustered { store, schema }, Source::Full) => {
            let mut pairs = Vec::new();
            for (class, coli) in schema.classes_with_column(p) {
                scan_segment_column(
                    cx,
                    store.segment(class),
                    coli,
                    restrict,
                    s_range,
                    &mut pairs,
                );
            }
            for (class, mi) in schema.classes_with_multi(p) {
                scan_multi_table(cx, store.segment(class), mi, restrict, s_range, &mut pairs);
            }
            pairs.extend(scan_baseline(cx, &store.irregular, p, restrict, s_range));
            pairs
        }
    };
    apply_delta_pairs(cx, p, restrict, s_range, &mut out);
    // Segments were appended in class order; different sources may
    // interleave in subject space (sparse segments, irregular exceptions,
    // delta runs).
    out.sort_unstable();
    ExecStats::bump(&cx.stats.rows_scanned, out.len() as u64);
    out
}

/// Merge the context's delta view into one property's (s, o) stream: drop
/// base-resident pairs the view tombstones, then union the visible insert
/// runs (restricted like the base scan). Shared by the vectorized and the
/// rowwise property scans so both see the identical merged source; callers
/// sort afterwards. Delta triples are logically irregular — they belong to
/// both `Source::Full` and `Source::IrregularOnly` streams, which is what
/// routes them into RDFscan's exception lists for subjects that live inside
/// class segments.
pub(crate) fn apply_delta_pairs(
    cx: &ExecContext,
    p: Oid,
    restrict: &ORestrict,
    s_range: SRange,
    out: &mut Vec<(Oid, Oid)>,
) {
    let Some(delta) = cx.delta() else { return };
    if delta.has_tombstones_for(p) {
        out.retain(|&(s, o)| !delta.is_deleted(Triple::new(s, p, o)));
    }
    out.extend(
        delta
            .insert_pairs_for(p, s_range)
            .filter(|&(_, o)| restrict.accepts(o.raw())),
    );
}

/// Property scan against a permutation-indexed store.
fn scan_baseline(
    cx: &ExecContext,
    store: &BaselineStore,
    p: Oid,
    restrict: &ORestrict,
    s_range: SRange,
) -> Vec<(Oid, Oid)> {
    let pool = cx.pool;
    if let Some(eq) = restrict.eq {
        // POS: exact object lookup, subjects sorted.
        let idx = store.perm(Order::Pos);
        let mut r = idx.range2(pool, p, eq);
        if let Some((lo, hi)) = s_range {
            let start = idx.col(2).lower_bound_in(pool, r.clone(), lo);
            let end = idx.col(2).upper_bound_in(pool, r.clone(), hi);
            r = start..end.max(start);
        }
        let mut out = Vec::with_capacity(r.len());
        idx.col(2).for_each_chunk(pool, r, |c| {
            out.extend(c.values().iter().map(|&s| (Oid::from_raw(s), eq)));
        });
        return out;
    }
    if let Some((lo, hi)) = restrict.range {
        // POS range scan: pairs arrive (o, s)-sorted; caller re-sorts.
        let idx = store.perm(Order::Pos);
        let r = idx.range2_between(pool, p, Oid::from_raw(lo), Oid::from_raw(hi));
        let mut out = Vec::with_capacity(r.len());
        sordf_columnar::Column::for_each_chunk_pair(idx.col(2), idx.col(1), pool, r, |sc, oc| {
            out.extend(
                sc.values()
                    .iter()
                    .zip(oc.values())
                    .filter(|&(&s, _)| s_range.map_or(true, |(lo, hi)| s >= lo && s <= hi))
                    .map(|(&s, &o)| (Oid::from_raw(s), Oid::from_raw(o))),
            );
        });
        return out;
    }
    // Plain PSO scan.
    let idx = store.perm(Order::Pso);
    let mut r = idx.range1(pool, p);
    if let Some((lo, hi)) = s_range {
        let start = idx.col(1).lower_bound_in(pool, r.clone(), lo);
        let end = idx.col(1).upper_bound_in(pool, r.clone(), hi);
        r = start..end.max(start);
    }
    idx.pairs(pool, r)
}

/// Extract (subject, value) pairs from one class segment column.
fn scan_segment_column(
    cx: &ExecContext,
    seg: &sordf_storage::ClassSegment,
    coli: usize,
    restrict: &ORestrict,
    s_range: SRange,
    out: &mut Vec<(Oid, Oid)>,
) {
    let pool = cx.pool;
    let col = &seg.columns[coli];
    // Row range from the subject restriction.
    let mut rows = 0..seg.n;
    if let Some((lo, hi)) = s_range {
        match &seg.subjects {
            SubjectIds::Dense { base } => {
                let lo_oid = Oid::from_raw(lo);
                let hi_oid = Oid::from_raw(hi);
                // The range may span non-IRI tags; clamp to the IRI space.
                if hi_oid < Oid::iri(0) || lo_oid > Oid::iri(sordf_model::oid::PAYLOAD_MASK) {
                    return;
                }
                let lo_p = if lo_oid < Oid::iri(0) {
                    0
                } else {
                    lo_oid.payload()
                }
                .max(*base);
                let hi_p = if hi_oid > Oid::iri(sordf_model::oid::PAYLOAD_MASK) {
                    sordf_model::oid::PAYLOAD_MASK
                } else {
                    hi_oid.payload()
                }
                .min(base + seg.n as u64 - 1);
                if lo_p > hi_p {
                    return;
                }
                rows = (lo_p - base) as usize..(hi_p - base + 1) as usize;
            }
            SubjectIds::Sparse { subjects } => {
                let start = subjects.lower_bound(pool, lo);
                let end = subjects.upper_bound(pool, hi);
                if start >= end {
                    return;
                }
                rows = start..end;
            }
        }
    }
    // Row range from the object restriction when the segment is sub-ordered
    // by this very column.
    let (olo, ohi) = restrict.bounds();
    if !restrict.is_none() {
        if let Some(r) = seg.sorted_row_range(pool, coli, olo, ohi) {
            rows = rows.start.max(r.start)..rows.end.min(r.end);
        }
    }
    if rows.start >= rows.end {
        return;
    }
    // Page-at-a-time scan. The zone-map check (and the all-NULL fast path)
    // runs *before* a page is pinned, so pruned pages cost no pool request;
    // the subject column of a sparse segment shares the value column's page
    // geometry and is pinned in lockstep.
    let use_zonemaps = cx.config.zonemaps && !restrict.is_none();
    let row_range = rows.clone();
    col.for_each_chunk_pruned(
        pool,
        rows,
        |_, st| {
            // Runs once per page before it is pinned: the per-chunk
            // cancellation poll of the sequential scan path.
            cx.check_cancelled();
            if st.n_nonnull == 0 {
                // Only NULL sentinels here; nothing can be emitted.
                return false;
            }
            if use_zonemaps && !st.overlaps(olo, ohi) {
                ExecStats::bump(&cx.stats.zonemap_pages_skipped, 1);
                return false;
            }
            ExecStats::bump(&cx.stats.pages_scanned, 1);
            true
        },
        |chunk| match &seg.subjects {
            SubjectIds::Dense { base } => {
                let s0 = base + chunk.start as u64;
                for (i, &v) in chunk.values().iter().enumerate() {
                    if v != sordf_columnar::column::NULL_SENTINEL && restrict.accepts(v) {
                        out.push((Oid::iri(s0 + i as u64), Oid::from_raw(v)));
                    }
                }
            }
            SubjectIds::Sparse { subjects } => {
                let p = chunk.start / sordf_columnar::VALS_PER_PAGE;
                let subj = subjects.pin_page_in(pool, p, row_range.clone());
                for (&v, &s) in chunk.values().iter().zip(subj.values()) {
                    if v != sordf_columnar::column::NULL_SENTINEL && restrict.accepts(v) {
                        out.push((Oid::from_raw(s), Oid::from_raw(v)));
                    }
                }
            }
        },
    );
}

/// Extract pairs from a multi-valued side table.
fn scan_multi_table(
    cx: &ExecContext,
    seg: &sordf_storage::ClassSegment,
    mi: usize,
    restrict: &ORestrict,
    s_range: SRange,
    out: &mut Vec<(Oid, Oid)>,
) {
    let pool = cx.pool;
    let table = &seg.multi[mi];
    let mut rows = 0..table.s.len();
    if let Some((lo, hi)) = s_range {
        let start = table.s.lower_bound(pool, lo);
        let end = table.s.upper_bound(pool, hi);
        rows = start..end.max(start);
    }
    if rows.start >= rows.end {
        return;
    }
    // (s, o) columns share page geometry; pin both in lockstep per page.
    sordf_columnar::Column::for_each_chunk_pair(&table.s, &table.o, pool, rows, |sc, oc| {
        for (&s, &o) in sc.values().iter().zip(oc.values()) {
            if restrict.accepts(o) {
                out.push((Oid::from_raw(s), Oid::from_raw(o)));
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{ExecConfig, PlanScheme};
    use sordf_columnar::{BufferPool, DiskManager};
    use sordf_model::Term;
    use sordf_schema::SchemaConfig;
    use sordf_storage::{build_clustered, reorganize, ClusterSpec, TripleSet};
    use std::sync::Arc;

    struct Fixture {
        _dm: Arc<DiskManager>,
        pool: BufferPool,
        ts: TripleSet,
        baseline: sordf_storage::BaselineStore,
        clustered: sordf_storage::ClusteredStore,
        schema: sordf_schema::EmergentSchema,
    }

    fn fixture() -> Fixture {
        let mut ts = TripleSet::new();
        let mut add = |s: String, p: &str, o: Term| {
            ts.add(&sordf_model::TermTriple::new(
                Term::iri(s),
                Term::iri(format!("http://e/{p}")),
                o,
            ))
            .unwrap();
        };
        for i in 0..200u64 {
            add(
                format!("http://e/item{i}"),
                "qty",
                Term::int((i % 50) as i64),
            );
            add(
                format!("http://e/item{i}"),
                "sold",
                Term::date(&format!("1996-{:02}-{:02}", (i % 12) + 1, (i % 28) + 1)),
            );
        }
        // An irregular exception: one extra string-typed qty.
        add("http://e/item0".into(), "qty", Term::str("n/a"));

        let dm = Arc::new(DiskManager::temp().unwrap());
        let spo = ts.sorted_spo();
        let mut schema = sordf_schema::discover(&spo, &ts.dict, &SchemaConfig::default());
        let spec = ClusterSpec::auto(&schema);
        reorganize(&mut ts, &mut schema, &spec);
        let spo = ts.sorted_spo();
        // Both stores over the same (reorganized) OIDs so that one dict
        // serves both contexts in these unit tests.
        let baseline = sordf_storage::BaselineStore::build(&dm, &spo);
        let clustered = build_clustered(&dm, &spo, &mut schema, &spec, true);
        let pool = BufferPool::new(Arc::clone(&dm), 1024);
        Fixture {
            _dm: dm,
            pool,
            ts,
            baseline,
            clustered,
            schema,
        }
    }

    fn cx<'a>(f: &'a Fixture, clustered: bool) -> ExecContext<'a> {
        let storage = if clustered {
            StorageRef::Clustered {
                store: &f.clustered,
                schema: &f.schema,
            }
        } else {
            StorageRef::Baseline(&f.baseline)
        };
        ExecContext::new(
            &f.pool,
            &f.ts.dict,
            storage,
            ExecConfig {
                scheme: PlanScheme::RdfScanJoin,
                zonemaps: true,
                ..Default::default()
            },
        )
    }

    /// NOTE: baseline was built *before* reorganization, so its OIDs differ
    /// from the clustered store's. Counting and value-distribution checks
    /// remain comparable; exact OID equality does not.
    #[test]
    fn full_scan_counts_agree() {
        let f = fixture();
        let c = cx(&f, true);
        let qty_new = f.ts.dict.iri_oid("http://e/qty").unwrap();
        let pairs = scan_property(&c, qty_new, &ORestrict::none(), None, Source::Full);
        assert_eq!(pairs.len(), 201, "200 ints + 1 string exception");
        assert!(pairs.windows(2).all(|w| w[0] <= w[1]), "sorted by (s,o)");
    }

    #[test]
    fn eq_restrict() {
        let f = fixture();
        let c = cx(&f, true);
        let qty = f.ts.dict.iri_oid("http://e/qty").unwrap();
        let five = Oid::from_int(5).unwrap();
        let pairs = scan_property(&c, qty, &ORestrict::eq(five), None, Source::Full);
        assert_eq!(pairs.len(), 4, "i % 50 == 5 for 4 of 200");
        assert!(pairs.iter().all(|&(_, o)| o == five));
    }

    #[test]
    fn range_restrict_on_sorted_segment() {
        let f = fixture();
        let c = cx(&f, true);
        let sold = f.ts.dict.iri_oid("http://e/sold").unwrap();
        let lo = Oid::from_date_days(sordf_model::date::parse_date("1996-03-01").unwrap()).unwrap();
        let hi = Oid::from_date_days(sordf_model::date::parse_date("1996-04-30").unwrap()).unwrap();
        let r = ORestrict {
            eq: None,
            range: Some((lo.raw(), hi.raw())),
        };
        let pairs = scan_property(&c, sold, &r, None, Source::Full);
        // Months 3 and 4 -> 2/12 of 200 ≈ 33 subjects (months cycle i%12).
        let expect = (0..200u64)
            .filter(|i| (i % 12) + 1 == 3 || (i % 12) + 1 == 4)
            .count();
        assert_eq!(pairs.len(), expect);
        assert!(pairs.iter().all(|&(_, o)| o >= lo && o <= hi));
    }

    #[test]
    fn baseline_range_restrict_matches_clustered() {
        let f = fixture();
        let sold_results: Vec<usize> = [false, true]
            .iter()
            .map(|&clu| {
                let c = cx(&f, clu);
                let sold = f.ts.dict.iri_oid("http://e/sold").unwrap();
                let lo = Oid::from_date_days(sordf_model::date::parse_date("1996-06-01").unwrap())
                    .unwrap();
                let hi = Oid::from_date_days(sordf_model::date::parse_date("1996-06-30").unwrap())
                    .unwrap();
                let r = ORestrict {
                    eq: None,
                    range: Some((lo.raw(), hi.raw())),
                };
                scan_property(&c, sold, &r, None, Source::Full).len()
            })
            .collect();
        assert_eq!(sold_results[0], sold_results[1]);
    }

    #[test]
    fn s_range_restricts_subjects() {
        let f = fixture();
        let c = cx(&f, true);
        let qty = f.ts.dict.iri_oid("http://e/qty").unwrap();
        let all = scan_property(&c, qty, &ORestrict::none(), None, Source::Full);
        let mid_lo = all[50].0.raw();
        let mid_hi = all[99].0.raw();
        let some = scan_property(
            &c,
            qty,
            &ORestrict::none(),
            Some((mid_lo, mid_hi)),
            Source::Full,
        );
        assert!(some
            .iter()
            .all(|&(s, _)| s.raw() >= mid_lo && s.raw() <= mid_hi));
        assert_eq!(some.len(), 50);
    }

    #[test]
    fn irregular_only_source() {
        let f = fixture();
        let c = cx(&f, true);
        let qty = f.ts.dict.iri_oid("http://e/qty").unwrap();
        let irr = scan_property(&c, qty, &ORestrict::none(), None, Source::IrregularOnly);
        assert_eq!(irr.len(), 1, "only the string exception is irregular");
    }

    #[test]
    fn delta_merges_into_scans_and_rowwise_agrees() {
        let f = fixture();
        let qty = f.ts.dict.iri_oid("http://e/qty").unwrap();
        let base = {
            let c = cx(&f, true);
            scan_property(&c, qty, &ORestrict::none(), None, Source::Full)
        };
        // Delete one base triple, insert one brand-new subject, and insert a
        // second value for an existing subject.
        let (s0, o0) = base[0];
        let (s1, _) = base[1];
        let new_s = Oid::iri(900_000);
        let seven = Oid::from_int(7).unwrap();
        let mut delta = sordf_storage::DeltaStore::new();
        let _ = delta.delete(&[Triple::new(s0, qty, o0)]);
        let _ = delta.insert_run(vec![
            Triple::new(new_s, qty, seven),
            Triple::new(s1, qty, seven),
        ]);
        let view = delta.current_view_arc().unwrap();

        for clustered in [false, true] {
            let c = cx(&f, clustered).with_delta(Some(view.clone()));
            let merged = scan_property(&c, qty, &ORestrict::none(), None, Source::Full);
            assert_eq!(merged.len(), base.len() + 1, "clustered={clustered}");
            assert!(!merged.contains(&(s0, o0)), "tombstone filtered");
            assert!(merged.contains(&(new_s, seven)), "insert unioned");
            assert!(merged.contains(&(s1, seven)), "second value unioned");
            assert!(
                merged.windows(2).all(|w| w[0] <= w[1]),
                "still (s,o)-sorted"
            );
            // The rowwise reference sees the identical merged source.
            let rw = crate::rowwise::scan_property_rowwise(
                &c,
                qty,
                &ORestrict::none(),
                None,
                Source::Full,
            );
            assert_eq!(merged, rw);
            // Restrictions apply to delta pairs too.
            let only7 = scan_property(&c, qty, &ORestrict::eq(seven), None, Source::Full);
            assert!(only7.contains(&(new_s, seven)));
            assert!(only7.iter().all(|&(_, o)| o == seven));
            // Subject ranges narrow delta pairs.
            let none = scan_property(
                &c,
                qty,
                &ORestrict::none(),
                Some((new_s.raw() + 1, u64::MAX)),
                Source::Full,
            );
            assert!(!none.contains(&(new_s, seven)));
        }
        // Delta triples are logically irregular: IrregularOnly sees them.
        let c = cx(&f, true).with_delta(Some(view.clone()));
        let irr = scan_property(&c, qty, &ORestrict::none(), None, Source::IrregularOnly);
        assert!(irr.contains(&(new_s, seven)));
        assert!(irr.contains(&(s1, seven)));
    }

    #[test]
    fn zonemap_skips_pages_on_selective_scan() {
        let f = fixture();
        let c = cx(&f, true);
        let sold = f.ts.dict.iri_oid("http://e/sold").unwrap();
        // Tiny range on the *non-sort* column qty to force zone-map pruning
        // (sold is the sort key; qty pages are unordered).
        let _ = sold;
        let qty = f.ts.dict.iri_oid("http://e/qty").unwrap();
        let v = Oid::from_int(3).unwrap();
        let r = ORestrict {
            eq: None,
            range: Some((v.raw(), v.raw())),
        };
        let pairs = scan_property(&c, qty, &r, None, Source::Full);
        assert_eq!(pairs.len(), 4);
        // 200 rows fit in one page, so nothing skippable here — just make
        // sure the counter exists and nothing crashed with zonemaps on.
        let _ = ExecStats::get(&c.stats.zonemap_pages_skipped);
    }
}
