//! Scalar expressions, predicates and aggregate functions.
//!
//! Expressions evaluate over a row of bound OIDs. Comparisons prefer raw OID
//! order (valid for inlined literals and, after clustering, for sorted
//! string pools); ordered comparisons on *unsorted* string OIDs fall back to
//! dictionary decoding, so results stay correct on ParseOrder storage too.

use crate::table::VarId;
use sordf_model::{Dictionary, Oid, TypeTag};
use std::sync::Arc;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    pub fn eval(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }
}

/// Arithmetic operators (numeric domain).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

/// A scalar expression over query variables.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Var(VarId),
    /// A constant term (dictionary-encoded at parse time).
    Const(Oid),
    /// A raw numeric constant (for arithmetic like `1 - ?discount`).
    Num(f64),
    Cmp(Box<Expr>, CmpOp, Box<Expr>),
    Arith(Box<Expr>, ArithOp, Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Not(Box<Expr>),
    /// Set membership over a **sorted** OID list (binary search per row).
    /// The SQL compiler uses this to admit delta-routed subjects past a
    /// class segment's dense-range restriction.
    InSet(Box<Expr>, Arc<Vec<Oid>>),
}

/// Runtime value of an expression.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalValue {
    Oid(Oid),
    Num(f64),
    Bool(bool),
}

impl EvalValue {
    /// Numeric view (inlined numerics decode; booleans are 0/1).
    pub fn as_num(&self) -> Option<f64> {
        match self {
            EvalValue::Num(n) => Some(*n),
            EvalValue::Oid(o) => o.numeric_f64(),
            EvalValue::Bool(b) => Some(*b as i64 as f64),
        }
    }

    pub fn as_bool(&self) -> bool {
        match self {
            EvalValue::Bool(b) => *b,
            EvalValue::Num(n) => *n != 0.0,
            EvalValue::Oid(_) => true,
        }
    }
}

impl Expr {
    /// Convenience constructors.
    pub fn var(v: VarId) -> Expr {
        Expr::Var(v)
    }

    pub fn cmp(l: Expr, op: CmpOp, r: Expr) -> Expr {
        Expr::Cmp(Box::new(l), op, Box::new(r))
    }

    pub fn and(l: Expr, r: Expr) -> Expr {
        Expr::And(Box::new(l), Box::new(r))
    }

    /// All variables referenced by the expression.
    pub fn vars(&self, out: &mut Vec<VarId>) {
        match self {
            Expr::Var(v) => {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
            Expr::Const(_) | Expr::Num(_) => {}
            Expr::Cmp(l, _, r) | Expr::Arith(l, _, r) | Expr::And(l, r) | Expr::Or(l, r) => {
                l.vars(out);
                r.vars(out);
            }
            Expr::Not(e) | Expr::InSet(e, _) => e.vars(out),
        }
    }

    /// Split a conjunction into its conjuncts (`a && b && c` → `[a, b, c]`).
    /// The planner flattens filters this way so that every `var OP const`
    /// conjunct is visible to pushdown and to the enforced-filter check.
    pub fn conjuncts(&self) -> Vec<&Expr> {
        match self {
            Expr::And(l, r) => {
                let mut out = l.conjuncts();
                out.extend(r.conjuncts());
                out
            }
            other => vec![other],
        }
    }

    /// If this expression is `var OP const` (or mirrored), return the
    /// normalized triple — the planner uses this for filter pushdown.
    pub fn as_var_cmp(&self) -> Option<(VarId, CmpOp, Oid)> {
        let Expr::Cmp(l, op, r) = self else {
            return None;
        };
        match (l.as_ref(), r.as_ref()) {
            (Expr::Var(v), Expr::Const(c)) => Some((*v, *op, *c)),
            (Expr::Const(c), Expr::Var(v)) => {
                let flipped = match op {
                    CmpOp::Lt => CmpOp::Gt,
                    CmpOp::Le => CmpOp::Ge,
                    CmpOp::Gt => CmpOp::Lt,
                    CmpOp::Ge => CmpOp::Le,
                    other => *other,
                };
                Some((*v, flipped, *c))
            }
            _ => None,
        }
    }

    /// Evaluate against a row. `lookup` maps a variable to its bound OID.
    pub fn eval(&self, lookup: &impl Fn(VarId) -> Oid, dict: &Dictionary) -> EvalValue {
        match self {
            Expr::Var(v) => EvalValue::Oid(lookup(*v)),
            Expr::Const(c) => EvalValue::Oid(*c),
            Expr::Num(n) => EvalValue::Num(*n),
            Expr::Cmp(l, op, r) => {
                let lv = l.eval(lookup, dict);
                let rv = r.eval(lookup, dict);
                EvalValue::Bool(compare(&lv, &rv, dict).map(|o| op.eval(o)).unwrap_or(false))
            }
            Expr::Arith(l, op, r) => {
                let (Some(a), Some(b)) =
                    (l.eval(lookup, dict).as_num(), r.eval(lookup, dict).as_num())
                else {
                    return EvalValue::Num(f64::NAN);
                };
                EvalValue::Num(match op {
                    ArithOp::Add => a + b,
                    ArithOp::Sub => a - b,
                    ArithOp::Mul => a * b,
                    ArithOp::Div => a / b,
                })
            }
            Expr::And(l, r) => {
                EvalValue::Bool(l.eval(lookup, dict).as_bool() && r.eval(lookup, dict).as_bool())
            }
            Expr::Or(l, r) => {
                EvalValue::Bool(l.eval(lookup, dict).as_bool() || r.eval(lookup, dict).as_bool())
            }
            Expr::Not(e) => EvalValue::Bool(!e.eval(lookup, dict).as_bool()),
            Expr::InSet(e, set) => match e.eval(lookup, dict) {
                EvalValue::Oid(o) => EvalValue::Bool(set.binary_search(&o).is_ok()),
                _ => EvalValue::Bool(false),
            },
        }
    }
}

/// SPARQL-style value comparison. Same-tag OIDs compare by raw order except
/// strings, which compare by decoded text (OID order is only guaranteed to
/// match after clustering sorts the string pool). Numeric tags compare
/// cross-type through f64.
pub fn compare(l: &EvalValue, r: &EvalValue, dict: &Dictionary) -> Option<std::cmp::Ordering> {
    use EvalValue::*;
    match (l, r) {
        (Oid(a), Oid(b)) => {
            if a.is_null() || b.is_null() {
                return None;
            }
            if a == b {
                return Some(std::cmp::Ordering::Equal);
            }
            match (a.tag(), b.tag()) {
                (TypeTag::Str, TypeTag::Str) => {
                    let (ta, tb) = (dict.decode(*a).ok()?, dict.decode(*b).ok()?);
                    Some(ta.cmp(&tb))
                }
                (ta, tb) if ta == tb => Some(a.cmp(b)),
                // Cross numeric types compare by value.
                _ => match (a.numeric_f64(), b.numeric_f64()) {
                    (Some(x), Some(y)) => x.partial_cmp(&y),
                    _ => Some(a.cmp(b)), // fall back to tag order
                },
            }
        }
        (a, b) => a.as_num()?.partial_cmp(&b.as_num()?),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sordf_model::Value;

    fn dict_with(strings: &[&str]) -> Dictionary {
        let d = Dictionary::new();
        for s in strings {
            d.encode_value(&Value::str(*s)).unwrap();
        }
        d
    }

    #[test]
    fn numeric_comparison_and_arith() {
        let d = Dictionary::new();
        let lookup = |_: VarId| Oid::from_int(10).unwrap();
        let e = Expr::cmp(
            Expr::Arith(
                Box::new(Expr::Var(VarId(0))),
                ArithOp::Mul,
                Box::new(Expr::Num(2.0)),
            ),
            CmpOp::Eq,
            Expr::Num(20.0),
        );
        assert_eq!(e.eval(&lookup, &d), EvalValue::Bool(true));
    }

    #[test]
    fn string_comparison_uses_text_not_oid_order() {
        // "zebra" interned before "apple": OID order is wrong, text is right.
        let d = dict_with(&["zebra", "apple"]);
        let zebra = d.string_oid("zebra").unwrap();
        let apple = d.string_oid("apple").unwrap();
        assert!(zebra < apple, "parse order puts zebra first");
        let ord = compare(&EvalValue::Oid(apple), &EvalValue::Oid(zebra), &d).unwrap();
        assert_eq!(ord, std::cmp::Ordering::Less, "apple < zebra by text");
    }

    #[test]
    fn cross_type_numeric_comparison() {
        let d = Dictionary::new();
        let int2 = EvalValue::Oid(Oid::from_int(2).unwrap());
        let dec25 = EvalValue::Oid(Oid::from_decimal_unscaled(25_000).unwrap()); // 2.5
        assert_eq!(compare(&int2, &dec25, &d), Some(std::cmp::Ordering::Less));
    }

    #[test]
    fn date_range_filter() {
        let d = Dictionary::new();
        let date =
            |s: &str| Oid::from_date_days(sordf_model::date::parse_date(s).unwrap()).unwrap();
        let lookup = |_: VarId| date("1996-06-15");
        let e = Expr::and(
            Expr::cmp(
                Expr::Var(VarId(0)),
                CmpOp::Ge,
                Expr::Const(date("1996-01-01")),
            ),
            Expr::cmp(
                Expr::Var(VarId(0)),
                CmpOp::Lt,
                Expr::Const(date("1997-01-01")),
            ),
        );
        assert_eq!(e.eval(&lookup, &d), EvalValue::Bool(true));
    }

    #[test]
    fn null_comparisons_are_false() {
        let d = Dictionary::new();
        let lookup = |_: VarId| Oid::NULL;
        let e = Expr::cmp(Expr::Var(VarId(0)), CmpOp::Eq, Expr::Var(VarId(0)));
        assert_eq!(e.eval(&lookup, &d), EvalValue::Bool(false));
    }

    #[test]
    fn as_var_cmp_normalizes_mirrored_comparisons() {
        let c = Oid::from_int(5).unwrap();
        let e = Expr::cmp(Expr::Const(c), CmpOp::Lt, Expr::Var(VarId(3)));
        assert_eq!(e.as_var_cmp(), Some((VarId(3), CmpOp::Gt, c)));
    }

    #[test]
    fn vars_collection() {
        let e = Expr::and(
            Expr::cmp(Expr::Var(VarId(1)), CmpOp::Eq, Expr::Var(VarId(2))),
            Expr::Not(Box::new(Expr::Var(VarId(1)))),
        );
        let mut vars = Vec::new();
        e.vars(&mut vars);
        assert_eq!(vars, vec![VarId(1), VarId(2)]);
    }
}
