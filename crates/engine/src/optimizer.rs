//! The memoized cost-based optimizer: logical → physical lowering.
//!
//! Lowers a [`LogicalPlan`] to a [`PhysicalPlan`] by dynamic programming
//! over star subsets (the classic DP-size join enumeration, volcano-style
//! memoization keyed on the subset bitmask): `best[S]` is the cheapest way
//! to have joined exactly the stars in `S`. The bound-variable set of a
//! prefix depends only on *which* stars it contains, never on their order,
//! so subset memoization is sound. Beyond [`MAX_DP_STARS`] stars the
//! enumeration falls back to a greedy walk driven by the *same* cost model.
//!
//! ## Cost model
//!
//! Everything is derived from characteristic-set statistics through
//! [`cardest`]: per-star cardinalities come from `estimate_star_cs` (which
//! knows the structural correlations the paper is about), join hit ratios
//! from the containment assumption over per-column `n_distinct`
//! ([`cardest::estimate_join_rows`]), and all counts are drift-adjusted —
//! pending delta writes inflate them via [`cardest::stats_view`].
//!
//! Per step the model charges scan work plus join work, in abstract
//! row-touch units:
//!
//! * **RDFscan**: covered segment rows (zone maps shrink a class's share to
//!   `sel + 0.1`, floor 0.1, when a restricted property is one of its
//!   columns) plus the irregular/pending remainder of every property.
//! * **IdxScan+MergeJoin**: the summed per-property cardinalities — every
//!   property stream is scanned and merged.
//! * **RDFjoin (candidate-driven)**: one probe per candidate
//!   (`C_PROBE` ≈ binary search + row fetch) plus the matching fraction
//!   `d_link / d_star` of the scan.
//! * **Zone-map range pushdown** (subject or object): the scan and the
//!   probed star shrink to the candidate fraction plus a page-granularity
//!   residual, then a hash join.
//! * **Hash join**: full scan + build/probe of both sides.
//! * **Cross join**: full scan plus the `|L|·|R|` materialization — chosen
//!   only for genuinely disconnected components.
//!
//! Choices are enumerated in preference order and replaced only on strictly
//! lower cost, so ties resolve to the paper's operators (RDFscan, RDFjoin,
//! pushdown) and plans stay deterministic.

use crate::cardest::{
    self, estimate_distinct, estimate_join_rows, estimate_star_with, pred_cardinality,
    restrict_selectivity,
};
use crate::context::{ExecContext, PlanScheme, StorageRef};
use crate::expr::Expr;
use crate::plan::{JoinStrategy, LogicalPlan, PhysicalPlan, PhysicalStep, StarAccess};
use crate::query::VarOrOid;
use crate::star::{restrict_for_var, Star};
use crate::table::VarId;
use sordf_model::FxHashMap;
use sordf_schema::StatsView;
use sordf_storage::Order;

/// DP join enumeration is O(2^n · n²); beyond this the greedy fallback
/// (same cost model, locally cheapest next star) takes over.
pub const MAX_DP_STARS: usize = 12;

/// Cost of one candidate probe in an RDFjoin (binary search + row fetch),
/// relative to touching one row in a scan.
const C_PROBE: f64 = 8.0;

/// Residual fraction a zone-map range pushdown cannot skip: pruning is
/// page-granular and candidate ranges are rarely perfectly clustered.
const ZM_RESIDUAL: f64 = 0.1;

/// Precomputed per-star quantities the cost model reuses across the
/// exponential enumeration.
struct StarStats {
    /// Estimated result rows of the star alone (filters applied,
    /// drift-adjusted).
    rows: f64,
    /// Scan cost via per-property IdxScan+MergeJoin.
    scan_prop: f64,
    /// Scan cost via RDFscan (`None` on non-clustered storage).
    scan_rdf: Option<f64>,
    /// Estimated distinct values per bound variable.
    distinct: FxHashMap<VarId, f64>,
    /// Bound variables (subject + object vars), for shared-var discovery.
    vars: Vec<VarId>,
}

/// Everything the enumeration needs, borrowed once.
struct OptCtx<'a, 'cx> {
    cx: &'a ExecContext<'cx>,
    lp: &'a LogicalPlan,
    stats: Vec<StarStats>,
}

impl<'a, 'cx> OptCtx<'a, 'cx> {
    fn new(cx: &'a ExecContext<'cx>, lp: &'a LogicalPlan) -> OptCtx<'a, 'cx> {
        let sv = cardest::stats_view(cx);
        let filter_refs: Vec<&Expr> = lp.filters.iter().collect();
        let stats = lp
            .stars
            .iter()
            .map(|star| star_stats(cx, &sv, star, &filter_refs))
            .collect();
        OptCtx { cx, lp, stats }
    }

    /// Distinct estimate of `v` within a star-set prefix: the tightest
    /// bound any member star provides, capped by the prefix's row count.
    /// Depends only on the *set* (`picked`), never on join order.
    fn prefix_distinct(&self, picked: &[bool], prefix_rows: f64, v: VarId) -> f64 {
        let mut d = f64::INFINITY;
        for (i, ss) in self.stats.iter().enumerate() {
            if picked[i] {
                if let Some(&sd) = ss.distinct.get(&v) {
                    d = d.min(sd);
                }
            }
        }
        if d.is_finite() {
            d.min(prefix_rows.max(1.0))
        } else {
            prefix_rows.max(1.0)
        }
    }

    /// Build the cheapest step joining `star` onto the prefix described by
    /// `(picked, prefix_rows)` (an all-false `picked` seeds the plan).
    /// Returns the step and the estimated rows after it.
    fn make_step(&self, picked: &[bool], prefix_rows: f64, star_idx: usize) -> (PhysicalStep, f64) {
        let star = &self.lp.stars[star_idx];
        let ss = &self.stats[star_idx];
        let scheme = self.cx.config.scheme;
        let zonemaps = self.cx.config.zonemaps;

        // Shared variables with the prefix, subject first, then prop order
        // (the order the legacy link detection used).
        let seed = !picked.iter().any(|&p| p);
        let in_prefix = |v: VarId| {
            (0..self.lp.stars.len()).any(|i| picked[i] && self.stats[i].vars.contains(&v))
        };
        let mut join_vars: Vec<VarId> = Vec::new();
        if !seed {
            for &v in &ss.vars {
                if in_prefix(v) && !join_vars.contains(&v) {
                    join_vars.push(v);
                }
            }
        }

        // Legal access paths, preferred first.
        let accesses: &[StarAccess] = match (scheme, ss.scan_rdf.is_some()) {
            (PlanScheme::RdfScanJoin, true) => &[StarAccess::RdfScan, StarAccess::PropMerge],
            _ => &[StarAccess::PropMerge],
        };
        // Legal join strategies for the primary link, preferred first.
        let strategies: Vec<JoinStrategy> = if seed {
            vec![JoinStrategy::Seed]
        } else if join_vars.is_empty() {
            vec![JoinStrategy::Cross]
        } else if join_vars.contains(&star.subject_var) {
            let v = star.subject_var;
            match scheme {
                PlanScheme::RdfScanJoin => {
                    vec![
                        JoinStrategy::Candidates { var: v },
                        JoinStrategy::Hash { var: v },
                    ]
                }
                PlanScheme::Default if zonemaps => {
                    vec![
                        JoinStrategy::SubjectRange { var: v },
                        JoinStrategy::Hash { var: v },
                    ]
                }
                PlanScheme::Default => vec![JoinStrategy::Hash { var: v }],
            }
        } else {
            // First shared object variable in property order.
            let v = star
                .props
                .iter()
                .find_map(|p| p.o.as_var().filter(|v| join_vars.contains(v)))
                // sordf-lint: allow(L3) — join_vars is non-empty and every
                // non-subject bound var is an object var of some property.
                .unwrap();
            if zonemaps {
                vec![
                    JoinStrategy::ObjectRange { var: v },
                    JoinStrategy::Hash { var: v },
                ]
            } else {
                vec![JoinStrategy::Hash { var: v }]
            }
        };

        let key_distincts: Vec<(f64, f64)> = join_vars
            .iter()
            .map(|&v| {
                (
                    self.prefix_distinct(picked, prefix_rows, v),
                    ss.distinct.get(&v).copied().unwrap_or(ss.rows.max(1.0)),
                )
            })
            .collect();
        let join_rows = estimate_join_rows(prefix_rows, ss.rows, &key_distincts);

        let mut best: Option<(PhysicalStep, f64)> = None;
        for &access in accesses {
            let sc = match access {
                StarAccess::RdfScan => ss.scan_rdf.unwrap_or(ss.scan_prop),
                StarAccess::PropMerge => ss.scan_prop,
            };
            for strategy in &strategies {
                let link_d = strategy.var().map(|v| {
                    (
                        self.prefix_distinct(picked, prefix_rows, v),
                        ss.distinct.get(&v).copied().unwrap_or(ss.rows.max(1.0)),
                    )
                });
                let (cost, rows) = match strategy {
                    JoinStrategy::Seed => (sc, ss.rows),
                    JoinStrategy::Candidates { .. } => {
                        // sordf-lint: allow(L3) — strategy carries a var.
                        let (dl, ds) = link_d.unwrap();
                        let frac = (dl / ds.max(1.0)).clamp(0.0, 1.0);
                        (
                            dl * C_PROBE + sc * frac + prefix_rows + join_rows,
                            join_rows,
                        )
                    }
                    JoinStrategy::SubjectRange { .. } | JoinStrategy::ObjectRange { .. } => {
                        // sordf-lint: allow(L3) — strategy carries a var.
                        let (dl, ds) = link_d.unwrap();
                        let frac = (dl / ds.max(1.0) + ZM_RESIDUAL).clamp(ZM_RESIDUAL, 1.0);
                        (
                            sc * frac + prefix_rows + ss.rows * frac + join_rows,
                            join_rows,
                        )
                    }
                    JoinStrategy::Hash { .. } => {
                        (sc + prefix_rows + ss.rows + join_rows, join_rows)
                    }
                    JoinStrategy::Cross => {
                        let out = prefix_rows * ss.rows;
                        (sc + out, out)
                    }
                };
                let replace = match &best {
                    None => true,
                    Some((b, _)) => cost < b.cost,
                };
                if replace {
                    best = Some((
                        PhysicalStep {
                            star: star_idx,
                            access,
                            join: strategy.clone(),
                            join_vars: join_vars.clone(),
                            est_star_rows: ss.rows,
                            est_rows: rows,
                            cost,
                        },
                        rows,
                    ));
                }
            }
        }
        // sordf-lint: allow(L3) — both `accesses` and `strategies` are
        // non-empty by construction, so a best combination always exists.
        best.unwrap()
    }
}

/// Per-star statistics for the cost model (see module docs).
fn star_stats(cx: &ExecContext, sv: &StatsView, star: &Star, filters: &[&Expr]) -> StarStats {
    let rows = estimate_star_with(cx, sv, star, filters).max(0.0);
    let strings_ordered = cx.strings_value_ordered();

    // IdxScan+MergeJoin: every property stream is scanned end to end. Scans
    // over compressed pages charge a per-row decode surcharge
    // ([`StatsView::scan_cpu_factor`]) — they touch fewer bytes but spend
    // CPU unpacking them.
    let cpu = sv.scan_cpu_factor();
    let scan_prop: f64 = star
        .props
        .iter()
        .map(|p| pred_cardinality(cx, sv, p.pred))
        .sum::<f64>()
        .max(1.0)
        * cpu;

    // RDFscan: covered segment rows (zone-map-narrowed) + the irregular and
    // pending remainders of every property.
    let scan_rdf = match &cx.storage {
        StorageRef::Baseline(_) => None,
        StorageRef::Clustered { store, schema } => {
            let mut cost = 0.0f64;
            for class in &schema.classes {
                let mut covers_all = true;
                let mut zm_sel = 1.0f64;
                for prop in &star.props {
                    let restrict = match prop.o {
                        VarOrOid::Const(c) => crate::scan::ORestrict::eq(c),
                        VarOrOid::Var(v) => restrict_for_var(filters, v, strings_ordered),
                    };
                    let stats = if let Some(ci) = class.column_of(prop.pred) {
                        &class.columns[ci].stats
                    } else if let Some(mi) = class.multi_of(prop.pred) {
                        &class.multi_props[mi].stats
                    } else {
                        covers_all = false;
                        break;
                    };
                    if !restrict.is_none() {
                        zm_sel = zm_sel.min(restrict_selectivity(&restrict, stats));
                    }
                }
                if covers_all {
                    let factor = if cx.config.zonemaps {
                        (zm_sel + ZM_RESIDUAL).clamp(ZM_RESIDUAL, 1.0)
                    } else {
                        1.0
                    };
                    cost += class.n_subjects as f64 * factor;
                }
            }
            for p in &star.props {
                cost += store
                    .irregular
                    .perm(Order::Pso)
                    .range1(cx.pool, p.pred)
                    .len() as f64
                    + sv.pending_for(p.pred) as f64;
            }
            Some(cost.max(1.0) * cpu)
        }
    };

    let vars = star.bound_vars();
    let mut distinct = FxHashMap::default();
    for &v in &vars {
        distinct.insert(v, estimate_distinct(cx, sv, star, v, rows));
    }
    StarStats {
        rows,
        scan_prop,
        scan_rdf,
        distinct,
        vars,
    }
}

/// One memo entry of the subset DP: the cheapest plan covering this mask.
struct MemoEntry {
    cost: f64,
    rows: f64,
    prev: u64,
    step: PhysicalStep,
}

/// Optimize: pick star order, access paths and join strategies by cost.
pub fn optimize(cx: &ExecContext, lp: &LogicalPlan) -> PhysicalPlan {
    let n = lp.stars.len();
    if n == 0 {
        return PhysicalPlan {
            scheme: cx.config.scheme,
            zonemaps: cx.config.zonemaps,
            steps: Vec::new(),
            total_cost: 0.0,
        };
    }
    let octx = OptCtx::new(cx, lp);
    if n > MAX_DP_STARS {
        return greedy(cx, &octx, n);
    }

    // Bottom-up subset DP: extend every reachable mask by every absent
    // star; ascending mask order visits every subset before its supersets.
    let full: u64 = (1u64 << n) - 1;
    let mut memo: Vec<Option<MemoEntry>> = (0..=full).map(|_| None).collect();
    let none_picked = vec![false; n];
    for i in 0..n {
        let (step, rows) = octx.make_step(&none_picked, 0.0, i);
        memo[1usize << i] = Some(MemoEntry {
            cost: step.cost,
            rows,
            prev: 0,
            step,
        });
    }
    for mask in 1..=full {
        let Some((cost, rows)) = memo[mask as usize].as_ref().map(|e| (e.cost, e.rows)) else {
            continue;
        };
        let picked: Vec<bool> = (0..n).map(|i| mask & (1u64 << i) != 0).collect();
        for i in 0..n {
            let bit = 1u64 << i;
            if mask & bit != 0 {
                continue;
            }
            let (step, new_rows) = octx.make_step(&picked, rows, i);
            let cand_cost = cost + step.cost;
            let slot = &mut memo[(mask | bit) as usize];
            let replace = match slot.as_ref() {
                None => true,
                Some(e) => cand_cost < e.cost,
            };
            if replace {
                *slot = Some(MemoEntry {
                    cost: cand_cost,
                    rows: new_rows,
                    prev: mask,
                    step,
                });
            }
        }
    }

    // Reconstruct the step chain from the full mask backwards.
    let mut steps_rev: Vec<PhysicalStep> = Vec::with_capacity(n);
    let mut mask = full;
    let mut total_cost = 0.0;
    while mask != 0 {
        // sordf-lint: allow(L3) — every reachable mask (and `full` in
        // particular, via the chain of extensions from the seeds) has an
        // entry: the DP extends every populated subset by every absent star.
        let e = memo[mask as usize].take().unwrap();
        if mask == full {
            total_cost = e.cost;
        }
        mask = e.prev;
        steps_rev.push(e.step);
    }
    steps_rev.reverse();
    PhysicalPlan {
        scheme: cx.config.scheme,
        zonemaps: cx.config.zonemaps,
        steps: steps_rev,
        total_cost,
    }
}

/// Greedy fallback for very wide BGPs: repeatedly take the locally
/// cheapest next step under the same cost model.
fn greedy(cx: &ExecContext, octx: &OptCtx, n: usize) -> PhysicalPlan {
    let mut picked = vec![false; n];
    let mut rows = 0.0f64;
    let mut steps = Vec::with_capacity(n);
    let mut total_cost = 0.0;
    while steps.len() < n {
        let mut best: Option<(PhysicalStep, f64)> = None;
        for i in 0..n {
            if picked[i] {
                continue;
            }
            let cand = octx.make_step(&picked, rows, i);
            let replace = match &best {
                None => true,
                Some((b, _)) => cand.0.cost < b.cost,
            };
            if replace {
                best = Some(cand);
            }
        }
        // sordf-lint: allow(L3) — the loop runs while unpicked stars
        // remain, so a candidate always exists.
        let (step, new_rows) = best.unwrap();
        picked[step.star] = true;
        rows = new_rows;
        total_cost += step.cost;
        steps.push(step);
    }
    PhysicalPlan {
        scheme: cx.config.scheme,
        zonemaps: cx.config.zonemaps,
        steps,
        total_cost,
    }
}

/// Lower with a *forced* star order (differential tests, plan-quality
/// benchmarks): per-edge strategy and access selection is identical to
/// [`optimize`], only the order is imposed.
pub fn optimize_with_order(cx: &ExecContext, lp: &LogicalPlan, order: &[usize]) -> PhysicalPlan {
    debug_assert_eq!(order.len(), lp.stars.len());
    let octx = OptCtx::new(cx, lp);
    let mut picked = vec![false; lp.stars.len()];
    let mut rows = 0.0f64;
    let mut steps = Vec::with_capacity(order.len());
    let mut total_cost = 0.0;
    for &i in order {
        let (step, new_rows) = octx.make_step(&picked, rows, i);
        picked[i] = true;
        rows = new_rows;
        total_cost += step.cost;
        steps.push(step);
    }
    PhysicalPlan {
        scheme: cx.config.scheme,
        zonemaps: cx.config.zonemaps,
        steps,
        total_cost,
    }
}
