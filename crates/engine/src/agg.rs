//! Result finalization: projection, grouping/aggregation, DISTINCT,
//! ORDER BY, LIMIT — and the typed result set handed to frontends.

use crate::context::ExecContext;
use crate::expr::{compare, AggFunc, EvalValue};
use crate::query::{Query, SelectItem};
use crate::table::{Table, VarId};
use sordf_model::{Dictionary, FxHashMap, Oid};

/// One output value: a term OID, a computed number, or NULL.
#[derive(Debug, Clone, PartialEq)]
pub enum OutVal {
    Oid(Oid),
    Num(f64),
    Null,
}

impl OutVal {
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            OutVal::Num(n) => Some(*n),
            OutVal::Oid(o) => o.numeric_f64(),
            OutVal::Null => None,
        }
    }

    /// Render for display: decodes OIDs through the dictionary.
    pub fn render(&self, dict: &Dictionary) -> String {
        match self {
            OutVal::Null => "NULL".to_string(),
            OutVal::Num(n) => {
                if (n.fract()).abs() < 1e-9 && n.abs() < 1e15 {
                    format!("{}", *n as i64)
                } else {
                    format!("{n:.4}")
                }
            }
            OutVal::Oid(o) => match dict.decode(*o) {
                Ok(sordf_model::Term::Iri(iri)) => format!("<{iri}>"),
                Ok(sordf_model::Term::Blank(b)) => format!("_:{b}"),
                Ok(sordf_model::Term::Literal(l)) => l.value.lexical(),
                Err(_) => format!("{o:?}"),
            },
        }
    }
}

/// Total order over output values (NULLs last, numbers by value, terms by
/// SPARQL-ish value comparison).
pub fn cmp_outval(a: &OutVal, b: &OutVal, dict: &Dictionary) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    match (a, b) {
        (OutVal::Null, OutVal::Null) => Ordering::Equal,
        (OutVal::Null, _) => Ordering::Greater,
        (_, OutVal::Null) => Ordering::Less,
        (OutVal::Num(x), OutVal::Num(y)) => x.partial_cmp(y).unwrap_or(Ordering::Equal),
        (OutVal::Oid(x), OutVal::Oid(y)) => {
            compare(&EvalValue::Oid(*x), &EvalValue::Oid(*y), dict).unwrap_or(x.cmp(y))
        }
        (a, b) => match (a.as_f64(), b.as_f64()) {
            (Some(x), Some(y)) => x.partial_cmp(&y).unwrap_or(Ordering::Equal),
            _ => Ordering::Equal,
        },
    }
}

/// The final, typed query result. Stored row-major in one flat buffer —
/// materializing a result costs one allocation, not one per row.
#[derive(Debug, Clone, Default)]
pub struct ResultSet {
    pub columns: Vec<String>,
    /// Row-major values; length is `n_rows * columns.len()`.
    vals: Vec<OutVal>,
    n_rows: usize,
}

impl ResultSet {
    /// An empty result with the given header.
    pub fn new(columns: Vec<String>) -> ResultSet {
        ResultSet {
            columns,
            vals: Vec::new(),
            n_rows: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.n_rows
    }

    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// One row as a value slice.
    pub fn row(&self, i: usize) -> &[OutVal] {
        let nc = self.columns.len();
        &self.vals[i * nc..(i + 1) * nc]
    }

    /// Iterate rows as value slices.
    pub fn rows(&self) -> impl Iterator<Item = &[OutVal]> {
        (0..self.n_rows).map(move |i| self.row(i))
    }

    /// Append one row (must match the column count).
    pub fn push_row(&mut self, row: impl IntoIterator<Item = OutVal>) {
        let before = self.vals.len();
        self.vals.extend(row);
        debug_assert_eq!(self.vals.len() - before, self.columns.len());
        self.n_rows += 1;
    }

    /// Render all rows as strings (header excluded).
    pub fn render(&self, dict: &Dictionary) -> Vec<Vec<String>> {
        self.rows()
            .map(|r| r.iter().map(|v| v.render(dict)).collect())
            .collect()
    }

    /// A canonical sorted text form for differential testing: two result
    /// sets are equivalent iff this matches.
    pub fn canonical(&self, dict: &Dictionary) -> Vec<String> {
        let mut rows: Vec<String> = self
            .render(dict)
            .into_iter()
            .map(|r| r.join("\t"))
            .collect();
        rows.sort();
        rows
    }
}

/// Neumaier-compensated running sum. Storage generations scan rows in
/// different orders; naive `f64` accumulation makes SUM/AVG answers depend on
/// that order in the last ulps, which breaks differential testing across
/// configurations. Compensation keeps the result order-insensitive to within
/// one ulp of the exact sum, provided no intermediate overflows.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct CompensatedSum {
    sum: f64,
    compensation: f64,
}

impl CompensatedSum {
    fn add(&mut self, x: f64) {
        let t = self.sum + x;
        if self.sum.abs() >= x.abs() {
            self.compensation += (self.sum - t) + x;
        } else {
            self.compensation += (x - t) + self.sum;
        }
        self.sum = t;
    }

    /// Fold another compensated sum into this one. Adding the partial's sum
    /// through the compensated path and carrying its compensation keeps the
    /// merged total order-insensitive to within one ulp — the property that
    /// lets per-worker aggregation partials merge in any order and still
    /// agree with the sequential accumulation.
    fn merge(&mut self, other: &CompensatedSum) {
        self.add(other.sum);
        self.compensation += other.compensation;
    }

    fn value(&self) -> f64 {
        self.sum + self.compensation
    }
}

/// Aggregate accumulator.
pub(crate) enum AggState {
    Count(u64),
    Sum(CompensatedSum),
    Avg(CompensatedSum, u64),
    Min(Option<OutVal>),
    Max(Option<OutVal>),
}

impl AggState {
    fn new(f: AggFunc) -> AggState {
        match f {
            AggFunc::Count => AggState::Count(0),
            AggFunc::Sum => AggState::Sum(CompensatedSum::default()),
            AggFunc::Avg => AggState::Avg(CompensatedSum::default(), 0),
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
        }
    }

    fn add(&mut self, v: EvalValue, dict: &Dictionary) {
        let out = match &v {
            EvalValue::Oid(o) if o.is_null() => return,
            EvalValue::Oid(o) => OutVal::Oid(*o),
            // A NaN is an evaluation error (e.g. arithmetic on a non-numeric
            // term); SPARQL aggregates skip errored rows.
            EvalValue::Num(n) if n.is_nan() => return,
            EvalValue::Num(n) => OutVal::Num(*n),
            EvalValue::Bool(b) => OutVal::Num(*b as i64 as f64),
        };
        match self {
            AggState::Count(n) => *n += 1,
            AggState::Sum(s) => s.add(out.as_f64().unwrap_or(0.0)),
            AggState::Avg(s, n) => {
                if let Some(x) = out.as_f64() {
                    s.add(x);
                    *n += 1;
                }
            }
            AggState::Min(best) => {
                let better = best.as_ref().map_or(true, |b| {
                    cmp_outval(&out, b, dict) == std::cmp::Ordering::Less
                });
                if better {
                    *best = Some(out);
                }
            }
            AggState::Max(best) => {
                let better = best.as_ref().map_or(true, |b| {
                    cmp_outval(&out, b, dict) == std::cmp::Ordering::Greater
                });
                if better {
                    *best = Some(out);
                }
            }
        }
    }

    /// Fold a partial accumulator (from another row range) into this one.
    /// COUNT/MIN/MAX merge exactly; SUM/AVG merge through the compensated
    /// path, order-insensitive to within one ulp.
    pub(crate) fn merge(&mut self, other: AggState, dict: &Dictionary) {
        match (self, other) {
            (AggState::Count(n), AggState::Count(m)) => *n += m,
            (AggState::Sum(s), AggState::Sum(o)) => s.merge(&o),
            (AggState::Avg(s, n), AggState::Avg(o, m)) => {
                s.merge(&o);
                *n += m;
            }
            (AggState::Min(best), AggState::Min(Some(o))) => {
                let better = best.as_ref().map_or(true, |b| {
                    cmp_outval(&o, b, dict) == std::cmp::Ordering::Less
                });
                if better {
                    *best = Some(o);
                }
            }
            (AggState::Max(best), AggState::Max(Some(o))) => {
                let better = best.as_ref().map_or(true, |b| {
                    cmp_outval(&o, b, dict) == std::cmp::Ordering::Greater
                });
                if better {
                    *best = Some(o);
                }
            }
            (AggState::Min(_), AggState::Min(None)) | (AggState::Max(_), AggState::Max(None)) => {}
            _ => unreachable!("merging mismatched aggregate states"),
        }
    }

    fn finish(self) -> OutVal {
        match self {
            AggState::Count(n) => OutVal::Num(n as f64),
            AggState::Sum(s) => OutVal::Num(s.value()),
            AggState::Avg(s, n) => {
                if n == 0 {
                    OutVal::Null
                } else {
                    OutVal::Num(s.value() / n as f64)
                }
            }
            AggState::Min(b) | AggState::Max(b) => b.unwrap_or(OutVal::Null),
        }
    }
}

/// Effective select list: all pattern vars when empty.
pub(crate) fn effective_select(query: &Query) -> Vec<SelectItem> {
    if query.select.is_empty() {
        query
            .pattern_vars()
            .into_iter()
            .map(SelectItem::Var)
            .collect()
    } else {
        query.select.clone()
    }
}

/// Dense VarId -> column map, resolved once — per-row lookups must not
/// re-scan the table's variable list per access.
pub(crate) fn var_col_map(table: &Table) -> Vec<Option<usize>> {
    let n_var_ids = table
        .vars
        .iter()
        .map(|v| v.0 as usize + 1)
        .max()
        .unwrap_or(0);
    let mut var_col: Vec<Option<usize>> = vec![None; n_var_ids];
    for (c, v) in table.vars.iter().enumerate() {
        var_col[v.0 as usize] = Some(c);
    }
    var_col
}

/// Fresh accumulators for a select list (placeholders for non-aggregates).
pub(crate) fn new_agg_states(select: &[SelectItem]) -> Vec<AggState> {
    select
        .iter()
        .map(|s| match s {
            SelectItem::Agg { func, .. } => AggState::new(*func),
            _ => AggState::new(AggFunc::Count), // placeholder
        })
        .collect()
}

/// Accumulate a row range of the binding table into single-group (no GROUP
/// BY) aggregate states — the partial-aggregation unit the parallel
/// executor runs per worker before merging with [`AggState::merge`].
pub(crate) fn accumulate_single_group(
    cx: &ExecContext,
    select: &[SelectItem],
    table: &Table,
    var_col: &[Option<usize>],
    rows: std::ops::Range<usize>,
    states: &mut [AggState],
) {
    for i in rows {
        let lk = |v: VarId| -> Oid {
            var_col
                .get(v.0 as usize)
                .copied()
                .flatten()
                .map(|c| table.cols[c][i])
                .unwrap_or(Oid::NULL)
        };
        for (s, state) in select.iter().zip(states.iter_mut()) {
            if let SelectItem::Agg { expr, .. } = s {
                state.add(expr.eval(&lk, cx.dict), cx.dict);
            }
        }
    }
}

/// Render finished single-group states as the one-row result set.
pub(crate) fn single_group_result(
    cx: &ExecContext,
    query: &Query,
    select: &[SelectItem],
    states: Vec<AggState>,
) -> ResultSet {
    let columns: Vec<String> = select
        .iter()
        .map(|s| s.name(&query.vars).to_string())
        .collect();
    let mut rs = ResultSet::new(columns);
    let lk = |_: VarId| Oid::NULL;
    rs.push_row(select.iter().zip(states).map(|(s, state)| match s {
        SelectItem::Agg { .. } => state.finish(),
        SelectItem::Var(_) => OutVal::Null,
        SelectItem::Expr { expr, .. } => match expr.eval(&lk, cx.dict) {
            EvalValue::Oid(o) if o.is_null() => OutVal::Null,
            EvalValue::Oid(o) => OutVal::Oid(o),
            EvalValue::Num(n) => OutVal::Num(n),
            EvalValue::Bool(b) => OutVal::Num(b as i64 as f64),
        },
    }));
    rs
}

/// Apply SELECT / GROUP BY / DISTINCT / ORDER BY / LIMIT to the raw binding
/// table.
pub fn finalize(cx: &ExecContext, query: &Query, table: &Table) -> ResultSet {
    let select = effective_select(query);
    let columns: Vec<String> = select
        .iter()
        .map(|s| s.name(&query.vars).to_string())
        .collect();

    let var_col = var_col_map(table);
    let lookup_at = |i: usize| {
        let var_col = &var_col;
        move |v: VarId| -> Oid {
            var_col
                .get(v.0 as usize)
                .copied()
                .flatten()
                .map(|c| table.cols[c][i])
                .unwrap_or(Oid::NULL)
        }
    };

    let mut rs = ResultSet::new(columns);
    if query.has_aggregates() && query.group_by.is_empty() && !table.is_empty() {
        // Single-group fast path (Q6-style whole-table aggregates): one
        // accumulator vector, one tight pass over the columns, no hashing.
        let mut states = new_agg_states(&select);
        accumulate_single_group(cx, &select, table, &var_col, 0..table.len(), &mut states);
        rs = single_group_result(cx, query, &select, states);
    } else if query.has_aggregates() {
        // Hash grouping on the GROUP BY key.
        let mut groups: FxHashMap<Vec<Oid>, Vec<AggState>> = FxHashMap::default();
        let mut order: Vec<Vec<Oid>> = Vec::new();
        for i in 0..table.len() {
            let lk = lookup_at(i);
            let key: Vec<Oid> = query.group_by.iter().map(|&v| lk(v)).collect();
            let states = groups.entry(key.clone()).or_insert_with(|| {
                order.push(key);
                select
                    .iter()
                    .map(|s| match s {
                        SelectItem::Agg { func, .. } => AggState::new(*func),
                        _ => AggState::new(AggFunc::Count), // placeholder
                    })
                    .collect()
            });
            for (s, state) in select.iter().zip(states.iter_mut()) {
                if let SelectItem::Agg { expr, .. } = s {
                    state.add(expr.eval(&lk, cx.dict), cx.dict);
                }
            }
        }
        for key in order {
            // sordf-lint: allow(L3) — `order` holds exactly the keys of `groups`, each removed once.
            let states = groups.remove(&key).unwrap();
            let kv: FxHashMap<VarId, Oid> = query
                .group_by
                .iter()
                .copied()
                .zip(key.iter().copied())
                .collect();
            let lk = |v: VarId| kv.get(&v).copied().unwrap_or(Oid::NULL);
            rs.push_row(select.iter().zip(states).map(|(s, state)| match s {
                SelectItem::Agg { .. } => state.finish(),
                SelectItem::Var(v) => {
                    let o = lk(*v);
                    if o.is_null() {
                        OutVal::Null
                    } else {
                        OutVal::Oid(o)
                    }
                }
                SelectItem::Expr { expr, .. } => match expr.eval(&lk, cx.dict) {
                    EvalValue::Oid(o) if o.is_null() => OutVal::Null,
                    EvalValue::Oid(o) => OutVal::Oid(o),
                    EvalValue::Num(n) => OutVal::Num(n),
                    EvalValue::Bool(b) => OutVal::Num(b as i64 as f64),
                },
            }));
        }
    } else {
        // Projection: resolve each select item to a column (or expression)
        // once, then sweep the columns directly — no per-row variable lookup.
        enum Item<'a> {
            Col(usize),
            Missing,
            Expr(&'a crate::expr::Expr),
        }
        let items: Vec<Item> = select
            .iter()
            .map(|s| match s {
                SelectItem::Var(v) => match var_col.get(v.0 as usize).copied().flatten() {
                    Some(c) => Item::Col(c),
                    None => Item::Missing,
                },
                SelectItem::Expr { expr, .. } | SelectItem::Agg { expr, .. } => Item::Expr(expr),
            })
            .collect();
        rs.vals.reserve(table.len() * items.len());
        for i in 0..table.len() {
            rs.push_row(items.iter().map(|item| match item {
                Item::Col(c) => {
                    let o = table.cols[*c][i];
                    if o.is_null() {
                        OutVal::Null
                    } else {
                        OutVal::Oid(o)
                    }
                }
                Item::Missing => OutVal::Null,
                Item::Expr(expr) => match expr.eval(&lookup_at(i), cx.dict) {
                    EvalValue::Oid(o) if o.is_null() => OutVal::Null,
                    EvalValue::Oid(o) => OutVal::Oid(o),
                    EvalValue::Num(n) => OutVal::Num(n),
                    EvalValue::Bool(b) => OutVal::Num(b as i64 as f64),
                },
            }));
        }
    }

    apply_modifiers(cx, query, &mut rs);
    rs
}

/// The DISTINCT / ORDER BY / LIMIT tail of [`finalize`], shared with the
/// parallel executor (which builds the aggregate row itself).
pub(crate) fn apply_modifiers(cx: &ExecContext, query: &Query, rs: &mut ResultSet) {
    let nc = rs.columns.len();
    if query.distinct {
        let mut kept: Vec<OutVal> = Vec::new();
        let mut n_kept = 0usize;
        for i in 0..rs.n_rows {
            let row = rs.row(i);
            let dup = (0..n_kept).any(|k| &kept[k * nc..(k + 1) * nc] == row);
            if !dup {
                kept.extend_from_slice(row);
                n_kept += 1;
            }
        }
        rs.vals = kept;
        rs.n_rows = n_kept;
    }

    if !rs.is_empty() && !query.order_by.is_empty() {
        let mut idx: Vec<usize> = (0..rs.n_rows).collect();
        idx.sort_by(|&a, &b| {
            for key in &query.order_by {
                let ord = cmp_outval(
                    &rs.vals[a * nc + key.output],
                    &rs.vals[b * nc + key.output],
                    cx.dict,
                );
                let ord = if key.ascending { ord } else { ord.reverse() };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        let mut sorted = Vec::with_capacity(rs.vals.len());
        for &i in &idx {
            sorted.extend_from_slice(rs.row(i));
        }
        rs.vals = sorted;
    }

    if let Some(limit) = query.limit {
        if rs.n_rows > limit {
            rs.n_rows = limit;
            rs.vals.truncate(limit * nc);
        }
    }
}
