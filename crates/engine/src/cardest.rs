//! Cardinality estimation: characteristic sets vs. independence.
//!
//! The paper motivates CS-awareness with exactly this: "being unaware of
//! structural correlations (e.g., availability of <isbn_no> causes the
//! occurrence of <has_author> almost a certainty) makes it difficult to
//! estimate the join hit ratio between triple patterns". The CS estimator
//! (after Neumann & Moerkotte) knows those correlations by construction; the
//! independence estimator multiplies per-pattern selectivities and divides
//! by the subject domain — systematically underestimating star results.

use crate::context::{ExecContext, StorageRef};
use crate::expr::Expr;
use crate::query::VarOrOid;
use crate::scan::ORestrict;
use crate::star::{restrict_for_var, Star};
use crate::table::VarId;
use sordf_schema::{ColStats, StatsView};
use sordf_storage::Order;

/// Selectivity of a pushed restriction against column statistics.
pub(crate) fn restrict_selectivity(r: &ORestrict, stats: &ColStats) -> f64 {
    if r.is_none() {
        return 1.0;
    }
    if r.eq.is_some() {
        return 1.0 / stats.n_distinct.max(1) as f64;
    }
    let (lo, hi) = r.bounds();
    match (stats.min, stats.max) {
        (Some(min), Some(max)) if max > min => {
            let lo = lo.max(min) as f64;
            let hi = hi.min(max) as f64;
            if hi < lo {
                0.0
            } else {
                ((hi - lo) / (max - min) as f64).clamp(0.0, 1.0)
            }
        }
        _ => 0.5,
    }
}

/// CS-based estimate: sum over classes covering the whole star.
/// Returns `None` on storage without a discovered schema.
pub fn estimate_star_cs(cx: &ExecContext, star: &Star, filters: &[&Expr]) -> Option<f64> {
    let StorageRef::Clustered { schema, .. } = &cx.storage else {
        return None;
    };
    let strings_ordered = cx.strings_value_ordered();
    let mut total = 0.0;
    for class in &schema.classes {
        let mut card = class.n_subjects as f64;
        let mut covers_all = true;
        for prop in &star.props {
            let restrict = match prop.o {
                VarOrOid::Const(c) => ORestrict::eq(c),
                VarOrOid::Var(v) => restrict_for_var(filters, v, strings_ordered),
            };
            if let Some(ci) = class.column_of(prop.pred) {
                let col = &class.columns[ci];
                // presence = P(subject has the property at all)
                card *= col.presence * restrict_selectivity(&restrict, &col.stats);
            } else if let Some(mi) = class.multi_of(prop.pred) {
                let mp = &class.multi_props[mi];
                card *= mp.mean_multiplicity * restrict_selectivity(&restrict, &mp.stats);
            } else {
                covers_all = false;
                break;
            }
        }
        if covers_all {
            total += card;
        }
    }
    Some(total)
}

/// Independence-assumption estimate (what a schema-oblivious triple store
/// does): product of per-pattern cardinalities over |subject domain|^(k-1).
pub fn estimate_star_independence(cx: &ExecContext, star: &Star, filters: &[&Expr]) -> f64 {
    let strings_ordered = cx.strings_value_ordered();
    let domain = cx.dict.n_iris().max(1) as f64;
    let mut est = 1.0f64;
    let mut k = 0usize;
    for prop in &star.props {
        // |pattern| ≈ triples with this predicate × filter selectivity.
        let n_pred = match &cx.storage {
            StorageRef::Baseline(store) => store.perm(Order::Pso).range1(cx.pool, prop.pred).len(),
            StorageRef::Clustered { store, schema } => {
                let mut n = store
                    .irregular
                    .perm(Order::Pso)
                    .range1(cx.pool, prop.pred)
                    .len();
                for (class, ci) in schema.classes_with_column(prop.pred) {
                    n += schema.class(class).columns[ci].stats.n_nonnull as usize;
                }
                for (class, mi) in schema.classes_with_multi(prop.pred) {
                    n += schema.class(class).multi_props[mi].stats.n_nonnull as usize;
                }
                n
            }
        } as f64;
        let restrict = match prop.o {
            VarOrOid::Const(_) => 0.001f64, // generic point-selectivity guess
            VarOrOid::Var(v) => {
                let r = restrict_for_var(filters, v, strings_ordered);
                if r.is_none() {
                    1.0
                } else if r.eq.is_some() {
                    0.001
                } else {
                    0.3 // generic range guess — the point of the ablation
                }
            }
        };
        est *= n_pred * restrict;
        k += 1;
    }
    if k > 1 {
        est /= domain.powi(k as i32 - 1);
    }
    est.max(0.0)
}

/// Best available estimate (CS when a schema exists).
pub fn estimate_star(cx: &ExecContext, star: &Star, filters: &[&Expr]) -> f64 {
    estimate_star_cs(cx, star, filters)
        .unwrap_or_else(|| estimate_star_independence(cx, star, filters))
}

// ---- optimizer-facing estimates (drift-adjusted via StatsView) -------------

/// The statistics snapshot the optimizer costs a query against: the pinned
/// generation's schema statistics plus the per-predicate pending-insert
/// counts of the query's delta view (drift adjustment — pending writes
/// inflate the estimates).
pub fn stats_view<'a>(cx: &'a ExecContext) -> StatsView<'a> {
    let encoding = match &cx.storage {
        StorageRef::Baseline(store) => store.encoding(),
        StorageRef::Clustered { store, .. } => store.encoding(),
    };
    let factor = match encoding {
        sordf_columnar::ColumnEncoding::Plain => 1.0,
        sordf_columnar::ColumnEncoding::Compressed => COMPRESSED_SCAN_CPU,
    };
    let sv = StatsView::new(cx.storage.schema()).with_scan_cpu_factor(factor);
    match cx.delta() {
        Some(d) => sv.with_pending(d.insert_counts_by_pred()),
        None => sv,
    }
}

/// Per-row CPU surcharge for scanning frame-of-reference-encoded pages:
/// positional decode is a shift+mask per value, a modest constant on top of
/// a plain load. The cost model charges it so a compressed scan only wins
/// plans where the bandwidth saving (fewer bytes touched) is in play.
const COMPRESSED_SCAN_CPU: f64 = 1.1;

/// Triples carrying `pred` visible to this query: base storage (clustered
/// class columns + irregular remainder, or the baseline PSO index) plus the
/// delta view's pending inserts.
pub fn pred_cardinality(cx: &ExecContext, sv: &StatsView, pred: sordf_model::Oid) -> f64 {
    let base = match &cx.storage {
        StorageRef::Baseline(store) => store.perm(Order::Pso).range1(cx.pool, pred).len() as u64,
        StorageRef::Clustered { store, .. } => {
            store.irregular.perm(Order::Pso).range1(cx.pool, pred).len() as u64
                + sv.regular_pred_cardinality(pred)
        }
    };
    (base + sv.pending_for(pred)) as f64
}

/// [`estimate_star`] inflated by the delta: a pending subject can only
/// satisfy the whole star if every property got a pending (or base) value,
/// so the scarcest pending predicate bounds the extra rows.
pub fn estimate_star_with(cx: &ExecContext, sv: &StatsView, star: &Star, filters: &[&Expr]) -> f64 {
    let base = estimate_star(cx, star, filters);
    let bonus = star
        .props
        .iter()
        .map(|p| sv.pending_for(p.pred) as f64)
        .fold(f64::INFINITY, f64::min);
    base + if bonus.is_finite() { bonus } else { 0.0 }
}

/// Estimated distinct values a star binds for `v`, clamped to `[1, rows]`.
/// The subject variable is near-unique per row; an object variable gets the
/// summed per-class `n_distinct` of its column (plus pending inserts). On
/// schemaless storage the row estimate itself is the only bound.
pub fn estimate_distinct(
    cx: &ExecContext,
    sv: &StatsView,
    star: &Star,
    v: VarId,
    star_rows: f64,
) -> f64 {
    let rows = star_rows.max(1.0);
    if v == star.subject_var {
        return rows;
    }
    if cx.storage.schema().is_some() {
        let mut d = 0.0f64;
        for prop in &star.props {
            if prop.o == VarOrOid::Var(v) {
                d += sv.distinct_for_pred(prop.pred) as f64;
            }
        }
        if d > 0.0 {
            return d.clamp(1.0, rows);
        }
    }
    rows
}

/// Join hit ratio from CS column statistics: for each shared variable the
/// containment assumption (`|L ⋈ R| = |L|·|R| / max(d_L, d_R)`) divides the
/// cross product by the larger distinct count — the "per-class presence ×
/// n_distinct overlap" estimate the structural correlations make accurate.
pub fn estimate_join_rows(l_rows: f64, r_rows: f64, key_distincts: &[(f64, f64)]) -> f64 {
    let mut j = l_rows.max(0.0) * r_rows.max(0.0);
    for &(dl, dr) in key_distincts {
        j /= dl.max(dr).max(1.0);
    }
    j
}
