//! Cardinality estimation: characteristic sets vs. independence.
//!
//! The paper motivates CS-awareness with exactly this: "being unaware of
//! structural correlations (e.g., availability of <isbn_no> causes the
//! occurrence of <has_author> almost a certainty) makes it difficult to
//! estimate the join hit ratio between triple patterns". The CS estimator
//! (after Neumann & Moerkotte) knows those correlations by construction; the
//! independence estimator multiplies per-pattern selectivities and divides
//! by the subject domain — systematically underestimating star results.

use crate::context::{ExecContext, StorageRef};
use crate::expr::Expr;
use crate::query::VarOrOid;
use crate::scan::ORestrict;
use crate::star::{restrict_for_var, Star};
use sordf_schema::ColStats;
use sordf_storage::Order;

/// Selectivity of a pushed restriction against column statistics.
fn restrict_selectivity(r: &ORestrict, stats: &ColStats) -> f64 {
    if r.is_none() {
        return 1.0;
    }
    if r.eq.is_some() {
        return 1.0 / stats.n_distinct.max(1) as f64;
    }
    let (lo, hi) = r.bounds();
    match (stats.min, stats.max) {
        (Some(min), Some(max)) if max > min => {
            let lo = lo.max(min) as f64;
            let hi = hi.min(max) as f64;
            if hi < lo {
                0.0
            } else {
                ((hi - lo) / (max - min) as f64).clamp(0.0, 1.0)
            }
        }
        _ => 0.5,
    }
}

/// CS-based estimate: sum over classes covering the whole star.
/// Returns `None` on storage without a discovered schema.
pub fn estimate_star_cs(cx: &ExecContext, star: &Star, filters: &[&Expr]) -> Option<f64> {
    let StorageRef::Clustered { schema, .. } = &cx.storage else {
        return None;
    };
    let strings_ordered = cx.strings_value_ordered();
    let mut total = 0.0;
    for class in &schema.classes {
        let mut card = class.n_subjects as f64;
        let mut covers_all = true;
        for prop in &star.props {
            let restrict = match prop.o {
                VarOrOid::Const(c) => ORestrict::eq(c),
                VarOrOid::Var(v) => restrict_for_var(filters, v, strings_ordered),
            };
            if let Some(ci) = class.column_of(prop.pred) {
                let col = &class.columns[ci];
                // presence = P(subject has the property at all)
                card *= col.presence * restrict_selectivity(&restrict, &col.stats);
            } else if let Some(mi) = class.multi_of(prop.pred) {
                let mp = &class.multi_props[mi];
                card *= mp.mean_multiplicity * restrict_selectivity(&restrict, &mp.stats);
            } else {
                covers_all = false;
                break;
            }
        }
        if covers_all {
            total += card;
        }
    }
    Some(total)
}

/// Independence-assumption estimate (what a schema-oblivious triple store
/// does): product of per-pattern cardinalities over |subject domain|^(k-1).
pub fn estimate_star_independence(cx: &ExecContext, star: &Star, filters: &[&Expr]) -> f64 {
    let strings_ordered = cx.strings_value_ordered();
    let domain = cx.dict.n_iris().max(1) as f64;
    let mut est = 1.0f64;
    let mut k = 0usize;
    for prop in &star.props {
        // |pattern| ≈ triples with this predicate × filter selectivity.
        let n_pred = match &cx.storage {
            StorageRef::Baseline(store) => store.perm(Order::Pso).range1(cx.pool, prop.pred).len(),
            StorageRef::Clustered { store, schema } => {
                let mut n = store
                    .irregular
                    .perm(Order::Pso)
                    .range1(cx.pool, prop.pred)
                    .len();
                for (class, ci) in schema.classes_with_column(prop.pred) {
                    n += schema.class(class).columns[ci].stats.n_nonnull as usize;
                }
                for (class, mi) in schema.classes_with_multi(prop.pred) {
                    n += schema.class(class).multi_props[mi].stats.n_nonnull as usize;
                }
                n
            }
        } as f64;
        let restrict = match prop.o {
            VarOrOid::Const(_) => 0.001f64, // generic point-selectivity guess
            VarOrOid::Var(v) => {
                let r = restrict_for_var(filters, v, strings_ordered);
                if r.is_none() {
                    1.0
                } else if r.eq.is_some() {
                    0.001
                } else {
                    0.3 // generic range guess — the point of the ablation
                }
            }
        };
        est *= n_pred * restrict;
        k += 1;
    }
    if k > 1 {
        est /= domain.powi(k as i32 - 1);
    }
    est.max(0.0)
}

/// Best available estimate (CS when a schema exists).
pub fn estimate_star(cx: &ExecContext, star: &Star, filters: &[&Expr]) -> f64 {
    estimate_star_cs(cx, star, filters)
        .unwrap_or_else(|| estimate_star_independence(cx, star, filters))
}
