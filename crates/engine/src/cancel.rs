//! Cooperative query cancellation and deadlines.
//!
//! A [`CancellationToken`] is a shared flag (plus an optional deadline) the
//! caller hands to a query through
//! [`ExecContext`](crate::context::ExecContext). Operators poll it at
//! *bounded-work* boundaries — per claimed morsel in the parallel executor,
//! per page in the chunked scans, per property scan and per plan step in the
//! sequential path — so a cancelled or timed-out query stops within one page
//! of work instead of running to completion.
//!
//! The stop mechanism reuses the engine's existing query-boundary fault
//! isolation: a tripped check raises a panic carrying the
//! [`QueryInterrupted`] sentinel payload, which unwinds through the
//! (read-only, guard-dropping) operator stack to the facade's
//! `catch_unwind`, where it is downcast and mapped to a typed
//! `Error::Cancelled` / `Error::Timeout` instead of a stringly `Error::Exec`.
//! The default panic hook is wrapped (once, lazily) to stay silent for this
//! sentinel — routine timeouts must not spam stderr.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a query was interrupted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The caller revoked the request (client disconnect, explicit cancel).
    Cancelled,
    /// The request's deadline passed.
    TimedOut,
}

/// The panic payload raised by a tripped cancellation check. Catch sites
/// (the facade's query boundary) downcast the payload to this type to
/// distinguish an interrupt from a genuine engine fault.
#[derive(Debug, Clone, Copy)]
pub struct QueryInterrupted(pub StopReason);

#[derive(Debug)]
struct Inner {
    /// Shared with every token linked via
    /// [`CancellationToken::with_deadline_floor`], so cancelling any linked
    /// token stops them all.
    cancelled: Arc<AtomicBool>,
    /// Latched by the first worker that observes the deadline passing, so
    /// every other poll is a flag load instead of a clock read.
    timed_out: AtomicBool,
    deadline: Option<Instant>,
}

/// Shared cancellation flag + optional deadline for one query. Cloning is
/// cheap (an `Arc` bump); all clones observe the same state.
#[derive(Debug, Clone)]
pub struct CancellationToken {
    inner: Arc<Inner>,
}

impl Default for CancellationToken {
    fn default() -> CancellationToken {
        CancellationToken::new()
    }
}

impl CancellationToken {
    /// A token with no deadline; stops only on [`cancel`](Self::cancel).
    pub fn new() -> CancellationToken {
        CancellationToken::with_deadline(None)
    }

    /// A token that additionally trips once `deadline` passes.
    pub fn with_deadline(deadline: Option<Instant>) -> CancellationToken {
        install_quiet_hook();
        CancellationToken {
            inner: Arc::new(Inner {
                cancelled: Arc::new(AtomicBool::new(false)),
                timed_out: AtomicBool::new(false),
                deadline,
            }),
        }
    }

    /// A token observing the same cancellation flag as `self`, with
    /// `deadline` folded in (the earlier of the two wins). The facade uses
    /// this to combine a caller-supplied token with a per-request timeout:
    /// cancelling either the original or the derived token stops the query,
    /// and the derived token additionally trips at the deadline.
    pub fn with_deadline_floor(&self, deadline: Instant) -> CancellationToken {
        let deadline = match self.inner.deadline {
            Some(existing) => existing.min(deadline),
            None => deadline,
        };
        CancellationToken {
            inner: Arc::new(Inner {
                cancelled: Arc::clone(&self.inner.cancelled),
                timed_out: AtomicBool::new(false),
                deadline: Some(deadline),
            }),
        }
    }

    /// A token that trips `timeout` from now.
    pub fn with_timeout(timeout: Duration) -> CancellationToken {
        CancellationToken::with_deadline(Instant::now().checked_add(timeout))
    }

    /// Request cancellation. Idempotent; safe from any thread.
    // ordering: Relaxed — the flag is a monotonic one-way signal carrying no
    // data; observers act on the flag alone, and the bounded poll interval
    // (one page of work) dwarfs any propagation delay.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Has [`cancel`](Self::cancel) been called? (Does not consult the
    /// deadline — use [`stop_reason`](Self::stop_reason) for the full poll.)
    // ordering: Relaxed — see `cancel`.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Relaxed)
    }

    /// Non-panicking poll: should the query stop, and why? Explicit
    /// cancellation wins over a simultaneously-passed deadline.
    // ordering: Relaxed for all three accesses — monotonic one-way flags
    // (see `cancel`); the timed_out latch is a pure clock-read saving, and
    // racing latchers store the same value.
    pub fn stop_reason(&self) -> Option<StopReason> {
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return Some(StopReason::Cancelled);
        }
        if self.inner.timed_out.load(Ordering::Relaxed) {
            return Some(StopReason::TimedOut);
        }
        if let Some(d) = self.inner.deadline {
            if Instant::now() >= d {
                self.inner.timed_out.store(true, Ordering::Relaxed);
                return Some(StopReason::TimedOut);
            }
        }
        None
    }

    /// The panicking poll operators call: raises [`QueryInterrupted`] if the
    /// token has tripped, to unwind to the query boundary.
    #[inline]
    pub fn check(&self) {
        if let Some(reason) = self.stop_reason() {
            // sordf-lint: allow(L3) — deliberate query-boundary interrupt;
            // the facade's catch_unwind downcasts the sentinel payload into
            // Error::Cancelled / Error::Timeout.
            std::panic::panic_any(QueryInterrupted(reason));
        }
    }

    /// The deadline, if any (the server uses it for `Retry-After` math).
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }
}

/// Downcast a caught panic payload to the interrupt sentinel, if it is one.
pub fn interrupted(payload: &(dyn std::any::Any + Send)) -> Option<StopReason> {
    payload.downcast_ref::<QueryInterrupted>().map(|q| q.0)
}

// ordering: Relaxed CAS — only gates a single hook installation; the
// take_hook/set_hook pair below is internally synchronized by std.
static QUIET_HOOK: AtomicBool = AtomicBool::new(false);

/// Wrap the process panic hook (once) so interrupt-sentinel panics unwind
/// silently: a timed-out query is a routine outcome, not a crash worth a
/// stderr line per request.
fn install_quiet_hook() {
    // ordering: Relaxed CAS — only gates a single installation; the
    // take_hook/set_hook pair below is internally synchronized by std.
    if QUIET_HOOK
        .compare_exchange(false, true, Ordering::Relaxed, Ordering::Relaxed)
        .is_err()
    {
        return;
    }
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if info.payload().downcast_ref::<QueryInterrupted>().is_none() {
            prev(info);
        }
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_trips_check() {
        let t = CancellationToken::new();
        assert_eq!(t.stop_reason(), None);
        t.check(); // no-op while untripped
        t.cancel();
        assert!(t.is_cancelled());
        assert_eq!(t.stop_reason(), Some(StopReason::Cancelled));
        let err = std::panic::catch_unwind(|| t.check()).unwrap_err();
        assert_eq!(interrupted(err.as_ref()), Some(StopReason::Cancelled));
    }

    #[test]
    fn deadline_trips_and_latches() {
        let t = CancellationToken::with_deadline(Some(Instant::now()));
        assert_eq!(t.stop_reason(), Some(StopReason::TimedOut));
        // Latched: subsequent polls see it without consulting the clock.
        assert!(t.inner.timed_out.load(Ordering::Relaxed));
        let err = std::panic::catch_unwind(|| t.check()).unwrap_err();
        assert_eq!(interrupted(err.as_ref()), Some(StopReason::TimedOut));
    }

    #[test]
    fn future_deadline_does_not_trip() {
        let t = CancellationToken::with_timeout(Duration::from_secs(3600));
        assert_eq!(t.stop_reason(), None);
        // Explicit cancellation wins over a pending deadline.
        t.cancel();
        assert_eq!(t.stop_reason(), Some(StopReason::Cancelled));
    }

    #[test]
    fn clones_share_state() {
        let t = CancellationToken::new();
        let c = t.clone();
        t.cancel();
        assert_eq!(c.stop_reason(), Some(StopReason::Cancelled));
    }

    #[test]
    fn deadline_floor_links_cancellation_and_tightens_deadline() {
        let t = CancellationToken::with_timeout(Duration::from_secs(3600));
        let now = Instant::now();
        let derived = t.with_deadline_floor(now);
        // The earlier deadline wins on the derived token...
        assert_eq!(derived.deadline(), Some(now));
        // ...without disturbing the original's.
        assert!(t.deadline().unwrap() > now);
        // Cancelling the original trips the derived token too.
        let t2 = CancellationToken::new();
        let d2 = t2.with_deadline_floor(now + Duration::from_secs(3600));
        t2.cancel();
        assert_eq!(d2.stop_reason(), Some(StopReason::Cancelled));
    }

    #[test]
    fn foreign_panics_still_classified_as_not_interrupt() {
        let err = std::panic::catch_unwind(|| panic!("boom")).unwrap_err();
        assert_eq!(interrupted(err.as_ref()), None);
    }
}
