//! # sordf — self-organizing structured RDF
//!
//! The facade crate of the workspace: a single [`Database`] type that walks
//! through the paper's whole lifecycle.
//!
//! ```
//! use sordf::{Database, ExecConfig, PlanScheme};
//!
//! let mut db = Database::in_temp_dir().unwrap();
//! db.load_ntriples(r#"
//!     <http://ex/book1> <http://ex/has_author> <http://ex/author1> .
//!     <http://ex/book1> <http://ex/in_year> "1996"^^<http://www.w3.org/2001/XMLSchema#integer> .
//!     <http://ex/book1> <http://ex/isbn_no> "1-56619-909-3" .
//!     <http://ex/book2> <http://ex/has_author> <http://ex/author2> .
//!     <http://ex/book2> <http://ex/in_year> "1997"^^<http://www.w3.org/2001/XMLSchema#integer> .
//!     <http://ex/book2> <http://ex/isbn_no> "1-56619-909-4" .
//!     <http://ex/book3> <http://ex/has_author> <http://ex/author1> .
//!     <http://ex/book3> <http://ex/in_year> "1998"^^<http://www.w3.org/2001/XMLSchema#integer> .
//!     <http://ex/book3> <http://ex/isbn_no> "1-56619-909-5" .
//! "#).unwrap();
//!
//! // Self-organize: discover the emergent schema, cluster subjects,
//! // rebuild storage as CS segments.
//! db.self_organize().unwrap();
//! assert_eq!(db.schema().unwrap().classes.len(), 1);
//!
//! let rs = db.query("SELECT ?a ?n WHERE { ?b <http://ex/has_author> ?a . \
//!                     ?b <http://ex/isbn_no> ?n . }").unwrap();
//! assert_eq!(rs.len(), 3);
//! ```
//!
//! The database keeps up to three physical generations, matching the axes of
//! the paper's Table I:
//!
//! 1. a **baseline** exhaustive-index store over parse-order OIDs,
//! 2. optional **CS tables in parse order** ([`Database::build_cs_tables`]),
//! 3. the **clustered** generation after [`Database::self_organize`]
//!    (subject-clustered OIDs, sorted literals, dense segments).
//!
//! Queries run against the newest built generation by default; benchmarks
//! pin a generation + plan scheme with [`Database::query_with`].

use std::io;
use std::path::Path;
use std::sync::Arc;

use sordf_columnar::{BufferPool, DiskManager, PoolStats};
use sordf_engine::agg::ResultSet;
use sordf_engine::context::StatsSnapshot;
use sordf_engine::planner::PlanInfo;
pub use sordf_engine::{ExecConfig, ParallelConfig, PlanScheme};
use sordf_engine::{ExecContext, StorageRef};
use sordf_model::{Dictionary, ModelError, TermTriple};
pub use sordf_schema::{EmergentSchema, SchemaConfig};
use sordf_storage::{
    build_clustered, reorganize, BaselineStore, ClusterSpec, ClusteredStore, ReorgReport,
    TripleSet,
};

/// Errors surfaced by the facade.
#[derive(Debug)]
pub enum Error {
    Io(io::Error),
    Model(ModelError),
    Sparql(sordf_sparql::ParseError),
    Sql(String),
    State(String),
    /// The execution engine failed mid-query (e.g. a page read kept failing
    /// after retries). The query is lost; the database stays usable.
    Exec(String),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Io(e) => write!(f, "io error: {e}"),
            Error::Model(e) => write!(f, "data error: {e}"),
            Error::Sparql(e) => write!(f, "{e}"),
            Error::Sql(e) => write!(f, "SQL error: {e}"),
            Error::State(e) => write!(f, "invalid state: {e}"),
            Error::Exec(e) => write!(f, "execution failed: {e}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Error {
        Error::Io(e)
    }
}

impl From<ModelError> for Error {
    fn from(e: ModelError) -> Error {
        Error::Model(e)
    }
}

impl From<sordf_sparql::ParseError> for Error {
    fn from(e: sordf_sparql::ParseError) -> Error {
        Error::Sparql(e)
    }
}

/// Which storage generation a query should run against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Generation {
    /// Exhaustive permutation indexes, parse-order OIDs.
    Baseline,
    /// CS tables with parse-order OIDs (sparse segments).
    CsParseOrder,
    /// Fully self-organized: clustered OIDs, dense segments.
    Clustered,
}

/// A query's result together with its execution trace.
pub struct Traced {
    pub results: ResultSet,
    pub stats: StatsSnapshot,
    pub pool: PoolStats,
}

/// The self-organizing RDF database.
pub struct Database {
    dm: Arc<DiskManager>,
    pool: BufferPool,
    ts: TripleSet,
    baseline: Option<BaselineStore>,
    schema: Option<EmergentSchema>,
    /// Sparse CS tables over parse-order OIDs (and the schema they use).
    cs_parse_order: Option<(ClusteredStore, EmergentSchema)>,
    clustered: Option<ClusteredStore>,
    /// Spec used for clustering (kept for reporting).
    spec: ClusterSpec,
    reorg_report: Option<ReorgReport>,
    config: ExecConfig,
}

impl Database {
    /// A database backed by a temp file (deleted on drop).
    pub fn in_temp_dir() -> Result<Database, Error> {
        Ok(Database::with_disk(Arc::new(DiskManager::temp()?)))
    }

    /// A database backed by the given file (truncated).
    pub fn create(path: &Path) -> Result<Database, Error> {
        Ok(Database::with_disk(Arc::new(DiskManager::create(path)?)))
    }

    fn with_disk(dm: Arc<DiskManager>) -> Database {
        let pool = BufferPool::new(Arc::clone(&dm), 4096); // 256 MiB cache
        Database {
            dm,
            pool,
            ts: TripleSet::new(),
            baseline: None,
            schema: None,
            cs_parse_order: None,
            clustered: None,
            spec: ClusterSpec::none(),
            reorg_report: None,
            config: ExecConfig::default(),
        }
    }

    // ---- loading -----------------------------------------------------------

    /// Load an N-Triples document. Invalidates built stores.
    pub fn load_ntriples(&mut self, text: &str) -> Result<usize, Error> {
        let n = self.ts.load_ntriples(text)?;
        self.invalidate();
        Ok(n)
    }

    /// Load term triples from a generator.
    pub fn load_terms(&mut self, triples: &[TermTriple]) -> Result<usize, Error> {
        let n = self.ts.extend_terms(triples)?;
        self.invalidate();
        Ok(n)
    }

    fn invalidate(&mut self) {
        self.baseline = None;
        self.schema = None;
        self.cs_parse_order = None;
        self.clustered = None;
        self.reorg_report = None;
    }

    /// Number of loaded triples.
    pub fn n_triples(&self) -> usize {
        self.ts.len()
    }

    pub fn dict(&self) -> &Dictionary {
        &self.ts.dict
    }

    // ---- building generations ----------------------------------------------

    /// Build the exhaustive-index baseline (Table I's "ParseOrder" scheme).
    pub fn build_baseline(&mut self) -> Result<(), Error> {
        if self.baseline.is_none() {
            let spo = self.ts.sorted_spo();
            self.baseline = Some(BaselineStore::build(&self.dm, &spo));
        }
        Ok(())
    }

    /// Run schema discovery (idempotent). Returns coverage.
    pub fn discover_schema(&mut self, cfg: &SchemaConfig) -> Result<f64, Error> {
        if self.clustered.is_some() {
            return Err(Error::State("schema already frozen by self_organize()".into()));
        }
        let spo = self.ts.sorted_spo();
        let schema = sordf_schema::discover(&spo, &self.ts.dict, cfg);
        let coverage = schema.coverage;
        self.schema = Some(schema);
        Ok(coverage)
    }

    /// Build CS tables *without* renumbering OIDs (sparse segments) — the
    /// "RDFscan on ParseOrder" configuration.
    pub fn build_cs_tables(&mut self) -> Result<(), Error> {
        if self.cs_parse_order.is_some() {
            return Ok(());
        }
        if self.schema.is_none() {
            self.discover_schema(&SchemaConfig::default())?;
        }
        let mut schema = self.schema.clone().unwrap();
        let spo = self.ts.sorted_spo();
        let spec = ClusterSpec::auto(&schema);
        let store = build_clustered(&self.dm, &spo, &mut schema, &spec, false);
        self.cs_parse_order = Some((store, schema));
        Ok(())
    }

    /// Self-organize: discover the schema (if not yet done), cluster subject
    /// OIDs, sort literal OIDs, and rebuild storage as dense CS segments.
    /// Uses [`ClusterSpec::auto`] unless a spec was set via
    /// [`Database::self_organize_with`].
    pub fn self_organize(&mut self) -> Result<&EmergentSchema, Error> {
        if self.schema.is_none() {
            self.discover_schema(&SchemaConfig::default())?;
        }
        let spec = ClusterSpec::auto(self.schema.as_ref().unwrap());
        self.self_organize_with(spec)
    }

    /// Self-organize with an explicit clustering spec.
    pub fn self_organize_with(&mut self, spec: ClusterSpec) -> Result<&EmergentSchema, Error> {
        if self.clustered.is_some() {
            return Ok(self.schema.as_ref().unwrap());
        }
        if self.schema.is_none() {
            self.discover_schema(&SchemaConfig::default())?;
        }
        let mut schema = self.schema.take().unwrap();
        let report = reorganize(&mut self.ts, &mut schema, &spec);
        let spo = self.ts.sorted_spo();
        let store = build_clustered(&self.dm, &spo, &mut schema, &spec, true);
        self.clustered = Some(store);
        self.schema = Some(schema);
        self.spec = spec;
        self.reorg_report = Some(report);
        // Parse-order generations hold stale OIDs now.
        self.baseline = None;
        self.cs_parse_order = None;
        Ok(self.schema.as_ref().unwrap())
    }

    /// The discovered schema, if any.
    pub fn schema(&self) -> Option<&EmergentSchema> {
        self.schema.as_ref()
    }

    /// The clustering report, if self-organized.
    pub fn reorg_report(&self) -> Option<&ReorgReport> {
        self.reorg_report.as_ref()
    }

    /// The clustered store, if self-organized.
    pub fn clustered_store(&self) -> Option<&ClusteredStore> {
        self.clustered.as_ref()
    }

    /// Render the SQL view of the emergent schema.
    pub fn ddl(&self) -> Result<String, Error> {
        let schema =
            self.schema.as_ref().ok_or(Error::State("no schema discovered yet".into()))?;
        Ok(schema.render_ddl(&self.ts.dict))
    }

    // ---- querying ----------------------------------------------------------

    /// Default engine configuration used by [`Database::query`].
    pub fn set_config(&mut self, config: ExecConfig) {
        self.config = config;
    }

    /// Drop the page cache: the next query runs *cold*.
    pub fn drop_cache(&self) {
        self.pool.clear();
    }

    /// Configure synthetic per-page-read latency (models disk I/O in the
    /// cold-run experiments).
    pub fn set_read_latency_ns(&self, ns: u64) {
        self.pool.set_read_latency_ns(ns);
    }

    /// Buffer pool statistics.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// The underlying buffer pool (advanced use: custom execution contexts,
    /// benchmark instrumentation).
    pub fn buffer_pool(&self) -> &BufferPool {
        &self.pool
    }

    fn storage_for(&self, generation: Generation) -> Result<StorageRef<'_>, Error> {
        match generation {
            Generation::Baseline => self
                .baseline
                .as_ref()
                .map(StorageRef::Baseline)
                .ok_or(Error::State("baseline not built; call build_baseline()".into())),
            Generation::CsParseOrder => self
                .cs_parse_order
                .as_ref()
                .map(|(store, schema)| StorageRef::Clustered { store, schema })
                .ok_or(Error::State("CS tables not built; call build_cs_tables()".into())),
            Generation::Clustered => match (&self.clustered, &self.schema) {
                (Some(store), Some(schema)) => Ok(StorageRef::Clustered { store, schema }),
                _ => Err(Error::State("not self-organized; call self_organize()".into())),
            },
        }
    }

    /// The newest generation that has been built.
    pub fn default_generation(&self) -> Result<Generation, Error> {
        if self.clustered.is_some() {
            Ok(Generation::Clustered)
        } else if self.cs_parse_order.is_some() {
            Ok(Generation::CsParseOrder)
        } else if self.baseline.is_some() {
            Ok(Generation::Baseline)
        } else {
            Err(Error::State("no storage built; load data and call self_organize()".into()))
        }
    }

    /// Run a SPARQL query against the newest generation with the default
    /// configuration.
    pub fn query(&self, sparql: &str) -> Result<ResultSet, Error> {
        Ok(self.query_traced(sparql, self.default_generation()?, self.config)?.results)
    }

    /// Run a SPARQL query pinned to a generation + configuration.
    pub fn query_with(
        &self,
        sparql: &str,
        generation: Generation,
        config: ExecConfig,
    ) -> Result<ResultSet, Error> {
        Ok(self.query_traced(sparql, generation, config)?.results)
    }

    /// Run a SPARQL query and return operator/pool statistics with it.
    pub fn query_traced(
        &self,
        sparql: &str,
        generation: Generation,
        config: ExecConfig,
    ) -> Result<Traced, Error> {
        self.query_traced_impl(sparql, generation, config, None)
    }

    /// Run a SPARQL query with morsel-parallel operators (see
    /// [`sordf_engine::parallel`]): page/row ranges are split across
    /// `parallel.workers` scoped threads sharing this database's buffer
    /// pool. Non-aggregate results are byte-identical to the sequential
    /// path (same rows, same order); SUM/AVG aggregates merge per-worker
    /// partials through the compensated accumulator and may differ from
    /// the sequential value in the last ulp (canonical/rendered forms
    /// agree — do not compare raw aggregate `f64`s bitwise).
    pub fn query_parallel(
        &self,
        sparql: &str,
        parallel: &ParallelConfig,
    ) -> Result<ResultSet, Error> {
        Ok(self
            .query_traced_parallel(sparql, self.default_generation()?, self.config, parallel)?
            .results)
    }

    /// [`Database::query_parallel`] pinned to a generation + configuration,
    /// returning operator/pool statistics with the results.
    pub fn query_traced_parallel(
        &self,
        sparql: &str,
        generation: Generation,
        config: ExecConfig,
        parallel: &ParallelConfig,
    ) -> Result<Traced, Error> {
        self.query_traced_impl(sparql, generation, config, Some(parallel))
    }

    fn query_traced_impl(
        &self,
        sparql: &str,
        generation: Generation,
        config: ExecConfig,
        parallel: Option<&ParallelConfig>,
    ) -> Result<Traced, Error> {
        let query = sordf_sparql::parse_sparql(sparql, &self.ts.dict)?;
        let storage = self.storage_for(generation)?;
        let cx = ExecContext::new(&self.pool, &self.ts.dict, storage, config);
        let pool_before = self.pool.stats();
        // Query-boundary fault isolation: an engine panic (e.g. a page read
        // that keeps failing after the pool's retries) fails this query, not
        // the process — the next query sees intact immutable storage.
        let results = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match parallel {
            None => sordf_engine::execute(&cx, &query),
            Some(par) => sordf_engine::execute_parallel(&cx, &query, par),
        }))
        .map_err(|payload| Error::Exec(panic_message(payload)))?;
        Ok(Traced {
            results,
            stats: cx.stats.snapshot(),
            pool: self.pool.stats().since(&pool_before),
        })
    }

    /// Explain the plan a SPARQL query would get.
    pub fn explain(&self, sparql: &str) -> Result<PlanInfo, Error> {
        let query = sordf_sparql::parse_sparql(sparql, &self.ts.dict)?;
        let storage = self.storage_for(self.default_generation()?)?;
        let cx = ExecContext::new(&self.pool, &self.ts.dict, storage, self.config);
        Ok(sordf_engine::explain(&cx, &query))
    }

    /// Run a SQL query against the emergent relational schema (requires
    /// [`Database::self_organize`] first).
    pub fn sql(&self, sql: &str) -> Result<ResultSet, Error> {
        let (Some(store), Some(schema)) = (&self.clustered, &self.schema) else {
            return Err(Error::State("SQL view requires self_organize() first".into()));
        };
        let query = sordf_sql::compile_sql(sql, schema, store, &self.ts.dict)
            .map_err(Error::Sql)?;
        let storage = StorageRef::Clustered { store, schema };
        let cx = ExecContext::new(&self.pool, &self.ts.dict, storage, self.config);
        Ok(sordf_engine::execute(&cx, &query))
    }
}

/// Render a panic payload as a message (best effort).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "engine panicked".to_string()
    }
}

/// Compile-time thread-safety audit: one `Database` serves concurrent
/// queries from many threads (shared pool, per-query contexts).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Database>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use sordf_model::Term;

    fn sample_db() -> Database {
        let mut db = Database::in_temp_dir().unwrap();
        let mut triples = Vec::new();
        for i in 0..50u64 {
            let s = format!("http://ex/item{i}");
            triples.push(TermTriple::new(
                Term::iri(s.clone()),
                Term::iri("http://ex/qty"),
                Term::int((i % 10) as i64),
            ));
            triples.push(TermTriple::new(
                Term::iri(s),
                Term::iri("http://ex/sold"),
                Term::date(&format!("1996-01-{:02}", (i % 28) + 1)),
            ));
        }
        db.load_terms(&triples).unwrap();
        db
    }

    #[test]
    fn lifecycle_and_query() {
        let mut db = sample_db();
        db.build_baseline().unwrap();
        let rs = db
            .query_with(
                "SELECT ?s ?q WHERE { ?s <http://ex/qty> ?q . FILTER(?q = 3) }",
                Generation::Baseline,
                ExecConfig { scheme: PlanScheme::Default, zonemaps: false },
            )
            .unwrap();
        assert_eq!(rs.len(), 5);

        db.self_organize().unwrap();
        let rs2 = db
            .query("SELECT ?s ?q WHERE { ?s <http://ex/qty> ?q . FILTER(?q = 3) }")
            .unwrap();
        assert_eq!(rs2.len(), 5);
        assert!(db.schema().unwrap().coverage > 0.99);
        assert!(db.reorg_report().is_some());
    }

    #[test]
    fn cold_vs_hot_pool_stats() {
        let mut db = sample_db();
        db.self_organize().unwrap();
        let q = "SELECT ?s WHERE { ?s <http://ex/qty> ?q . FILTER(?q < 5) }";
        db.drop_cache();
        let cold = db
            .query_traced(q, Generation::Clustered, ExecConfig::default())
            .unwrap();
        let hot = db
            .query_traced(q, Generation::Clustered, ExecConfig::default())
            .unwrap();
        assert!(cold.pool.misses > 0, "cold run must read pages");
        assert_eq!(hot.pool.misses, 0, "hot run must be fully cached");
        assert_eq!(cold.results.len(), hot.results.len());
    }

    #[test]
    fn query_before_build_errors() {
        let db = Database::in_temp_dir().unwrap();
        assert!(matches!(
            db.query("SELECT ?s WHERE { ?s <http://x/p> ?o . }"),
            Err(Error::State(_))
        ));
    }

    #[test]
    fn ddl_rendering() {
        let mut db = sample_db();
        db.self_organize().unwrap();
        let ddl = db.ddl().unwrap();
        assert!(ddl.contains("CREATE TABLE"), "{ddl}");
        assert!(ddl.contains("qty"), "{ddl}");
    }

    #[test]
    fn doc_example_compiles_and_runs() {
        // Mirror of the crate-level doc example.
        let mut db = Database::in_temp_dir().unwrap();
        db.load_ntriples(
            r#"<http://ex/book1> <http://ex/has_author> <http://ex/author1> .
<http://ex/book1> <http://ex/in_year> "1996"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://ex/book1> <http://ex/isbn_no> "1-56619-909-3" ."#,
        )
        .unwrap();
        db.self_organize().unwrap();
        let rs = db
            .query(
                "SELECT ?a ?n WHERE { ?b <http://ex/has_author> ?a . ?b <http://ex/isbn_no> ?n . }",
            )
            .unwrap();
        assert_eq!(rs.len(), 1);
    }
}
