//! # sordf — self-organizing structured RDF
//!
//! The facade crate of the workspace: a single [`Database`] type that walks
//! through the paper's whole lifecycle.
//!
//! ```
//! use sordf::{Database, ExecConfig, PlanScheme};
//!
//! let mut db = Database::in_temp_dir().unwrap();
//! db.load_ntriples(r#"
//!     <http://ex/book1> <http://ex/has_author> <http://ex/author1> .
//!     <http://ex/book1> <http://ex/in_year> "1996"^^<http://www.w3.org/2001/XMLSchema#integer> .
//!     <http://ex/book1> <http://ex/isbn_no> "1-56619-909-3" .
//!     <http://ex/book2> <http://ex/has_author> <http://ex/author2> .
//!     <http://ex/book2> <http://ex/in_year> "1997"^^<http://www.w3.org/2001/XMLSchema#integer> .
//!     <http://ex/book2> <http://ex/isbn_no> "1-56619-909-4" .
//!     <http://ex/book3> <http://ex/has_author> <http://ex/author1> .
//!     <http://ex/book3> <http://ex/in_year> "1998"^^<http://www.w3.org/2001/XMLSchema#integer> .
//!     <http://ex/book3> <http://ex/isbn_no> "1-56619-909-5" .
//! "#).unwrap();
//!
//! // Self-organize: discover the emergent schema, cluster subjects,
//! // rebuild storage as CS segments.
//! db.self_organize().unwrap();
//! assert_eq!(db.schema().unwrap().classes.len(), 1);
//!
//! let rs = db.query("SELECT ?a ?n WHERE { ?b <http://ex/has_author> ?a . \
//!                     ?b <http://ex/isbn_no> ?n . }").unwrap();
//! assert_eq!(rs.len(), 3);
//! ```
//!
//! The database keeps up to three physical generations, matching the axes of
//! the paper's Table I:
//!
//! 1. a **baseline** exhaustive-index store over parse-order OIDs,
//! 2. optional **CS tables in parse order** ([`Database::build_cs_tables`]),
//! 3. the **clustered** generation after [`Database::self_organize`]
//!    (subject-clustered OIDs, sorted literals, dense segments).
//!
//! Queries run against the newest built generation by default; benchmarks
//! pin a generation + plan scheme with [`Database::query_with`].
//!
//! The store stays organized **as data keeps arriving**: after
//! [`Database::self_organize`], [`Database::insert_ntriples`] and
//! [`Database::delete_matching`] write through an in-memory delta store
//! (sorted insert runs + tombstones, snapshot-sequenced — see
//! [`Database::snapshot`] / [`Database::query_snapshot`]) that every query
//! merges with the base generations, and
//! [`Database::maybe_reorganize`] re-runs discovery + clustering over the
//! merged data when a [`ReorgPolicy`] threshold fires — swapping a fresh
//! generation in behind the same query API.
//!
//! ## Background reorganization
//!
//! Reorganization happens **off the write path**: every query *pins* the
//! current [`StoreGeneration`] (an `Arc` of dictionary + base triples +
//! built stores) plus a delta view at query start and never re-reads shared
//! state. [`Database::reorganize_async`] (and the policy-gated
//! [`Database::maybe_reorganize_async`], or a [`Database::start_auto_reorg`]
//! thread) builds the next generation on a worker thread against that
//! pinned snapshot while reads *and writes* continue, then swaps the handle
//! in atomically — folding every write that arrived during the rebuild into
//! the fresh generation's delta store (decoded under the old dictionary,
//! re-encoded under the renumbered one, replayed in sequence order so
//! snapshots taken at or after the rebuild pin survive the swap). Readers
//! never block on a rebuild; writers stall only for the short swap +
//! catch-up fold, never for the rebuild itself. Synchronous
//! [`Database::reorganize_now`] / [`Database::maybe_reorganize`] run the
//! same pin → build → swap protocol inline on the calling thread.
//!
//! ## Durability
//!
//! [`Database::create_durable`] / [`Database::open`] put the whole
//! lifecycle on disk: every acknowledged write batch is write-ahead
//! logged (and, under [`SyncPolicy::Always`], fsynced) *before* any
//! in-memory structure sees it; [`Database::checkpoint`] snapshots the
//! visible triples and rotates the log; the background swap rotates the
//! snapshot/WAL pair along with the generation; and [`Database::open`]
//! recovers the exact acknowledged prefix after a crash at any point —
//! snapshot load, torn-frame-truncating WAL replay, layouts rebuilt as a
//! derived cache. Recovery is *logical* (snapshot and log hold N-Triples
//! text): OIDs may renumber across a reopen exactly as they do across a
//! background swap, while decoded results are identical. The labeled
//! [`CRASH_POINTS`] and the `crash_points` cargo feature arm the
//! fault-injection harness behind `tests/recovery_differential.rs`.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
// sordf-lint: allow(L4) — the auto-reorg stop handshake needs a Condvar,
// which the vendored shim does not provide; this std Mutex+Condvar pair
// guards only the stop flag and handles poisoning inline.
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::thread;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use sordf_columnar::crash_point;
pub use sordf_columnar::ColumnEncoding;
use sordf_columnar::{BufferPool, DiskManager, PoolStats};
use sordf_engine::agg::ResultSet;
use sordf_engine::context::StatsSnapshot;
pub use sordf_engine::planner::{PlanInfo, StepInfo};
pub use sordf_engine::{CancellationToken, ExecConfig, ParallelConfig, PlanScheme, StopReason};
use sordf_engine::{ExecContext, PhysicalPlan, StorageRef};
use sordf_model::{
    ntriples, Dictionary, FxHashMap, FxHashSet, ModelError, Oid, Term, TermTriple, Triple,
};
use sordf_schema::{ClassId, IncrementalAssigner};
pub use sordf_schema::{DriftStats, EmergentSchema, SchemaConfig};
use sordf_storage::{
    build_clustered_with, encode_triple_skolemized, reorganize, BaselineStore, ClusterSpec,
    ClusteredStore, DeltaStore, DeltaView, DeltaWrite, GenerationHandle, LayoutFlags, Manifest,
    ReorgReport, StoreSnapshot, TripleSet, WalRecord, WalWriter,
};
pub use sordf_storage::{DictPin, Snapshot, StoreGeneration, SyncPolicy, WalFormat};
use std::collections::HashMap;

/// Every labeled crash point in the durable write paths, in rough lifecycle
/// order. The fault-injection harness iterates this catalog, killing a
/// writer process at each point (`SORDF_CRASH_POINT=<label>`, requires the
/// `crash_points` cargo feature) and asserting recovery loses no
/// acknowledged write. See `sordf_columnar::crash_point`.
pub const CRASH_POINTS: &[&str] = &[
    "wal.pre_append",
    "wal.post_append",
    "wal.pre_sync",
    "wal.post_sync",
    "snap.pre_sync",
    "snap.post_sync",
    "manifest.pre_rename",
    "manifest.post_rename",
    "checkpoint.pre_manifest",
    "checkpoint.post_manifest",
    "swap.pre_manifest",
    "swap.post_manifest",
];

/// Errors surfaced by the facade.
#[derive(Debug)]
pub enum Error {
    Io(io::Error),
    Model(ModelError),
    Sparql(sordf_sparql::ParseError),
    Sql(String),
    State(String),
    /// The execution engine failed mid-query (e.g. a page read kept failing
    /// after retries). The query is lost; the database stays usable.
    Exec(String),
    /// The request's deadline passed mid-query ([`QueryRequest::timeout`] or
    /// a token deadline). The engine stopped within one page of work; the
    /// database stays usable.
    Timeout,
    /// The request's [`CancellationToken`] was cancelled (client disconnect,
    /// explicit revoke). The engine stopped within one page of work.
    Cancelled,
    /// Admission control rejected the request before execution: too many
    /// queries already in flight, or the server is draining for shutdown.
    /// Retry after backing off.
    Overloaded(String),
}

impl Error {
    /// A stable machine-readable code for this error, independent of the
    /// human-readable message. API front ends key on these: the HTTP server
    /// maps `parse_error`/`sql_error`/`invalid_state` to 400, `timeout` to
    /// 408, `cancelled` to 499, `overloaded` to 503 and the rest to 500.
    pub fn code(&self) -> &'static str {
        match self {
            Error::Io(_) => "io_error",
            Error::Model(_) => "data_error",
            Error::Sparql(_) => "parse_error",
            Error::Sql(_) => "sql_error",
            Error::State(_) => "invalid_state",
            Error::Exec(_) => "exec_error",
            Error::Timeout => "timeout",
            Error::Cancelled => "cancelled",
            Error::Overloaded(_) => "overloaded",
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Io(e) => write!(f, "io error: {e}"),
            Error::Model(e) => write!(f, "data error: {e}"),
            Error::Sparql(e) => write!(f, "{e}"),
            Error::Sql(e) => write!(f, "SQL error: {e}"),
            Error::State(e) => write!(f, "invalid state: {e}"),
            Error::Exec(e) => write!(f, "execution failed: {e}"),
            Error::Timeout => write!(f, "query timed out"),
            Error::Cancelled => write!(f, "query cancelled"),
            Error::Overloaded(e) => write!(f, "server overloaded: {e}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Error {
        Error::Io(e)
    }
}

impl From<ModelError> for Error {
    fn from(e: ModelError) -> Error {
        Error::Model(e)
    }
}

impl From<sordf_sparql::ParseError> for Error {
    fn from(e: sordf_sparql::ParseError) -> Error {
        Error::Sparql(e)
    }
}

/// Which storage generation a query should run against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Generation {
    /// Exhaustive permutation indexes, parse-order OIDs.
    Baseline,
    /// CS tables with parse-order OIDs (sparse segments).
    CsParseOrder,
    /// Fully self-organized: clustered OIDs, dense segments.
    Clustered,
}

/// A query's result together with its execution trace.
pub struct Traced {
    pub results: ResultSet,
    pub stats: StatsSnapshot,
    pub pool: PoolStats,
}

/// The query language of a [`QueryRequest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryLang {
    /// The supported SPARQL subset (see `sordf_sparql`).
    Sparql,
    /// The emergent-schema SQL view (requires [`Database::self_organize`]).
    Sql,
}

/// One fully-specified query, the single argument of [`Database::execute`].
///
/// A builder over everything the seven historical `query_*` variants spread
/// across their signatures: language, generation pin, engine configuration,
/// morsel parallelism, snapshot, trace, plus the request-lifecycle knobs the
/// old API had no room for — a deadline ([`timeout`](Self::timeout)) and a
/// [`CancellationToken`] ([`cancel`](Self::cancel)). Everything is optional
/// except the query text:
///
/// ```
/// use sordf::{Database, QueryRequest};
/// use std::time::Duration;
///
/// let mut db = Database::in_temp_dir().unwrap();
/// db.load_ntriples("<http://ex/s> <http://ex/p> <http://ex/o> .").unwrap();
/// db.self_organize().unwrap();
/// let resp = db
///     .execute(&QueryRequest::sparql("SELECT ?s WHERE { ?s <http://ex/p> ?o . }")
///         .timeout(Duration::from_secs(5))
///         .traced(true))
///     .unwrap();
/// assert_eq!(resp.results.len(), 1);
/// assert!(resp.stats.unwrap().rows_scanned >= 1);
/// ```
///
/// When both a token and a timeout are given, the effective deadline is the
/// earlier of the two and cancelling the caller's token still stops the
/// query. A tripped token fails the request with [`Error::Cancelled`] /
/// [`Error::Timeout`] *before* execution starts, so queueing time counts
/// against the deadline.
#[derive(Debug, Clone)]
pub struct QueryRequest {
    text: String,
    lang: QueryLang,
    generation: Option<Generation>,
    config: Option<ExecConfig>,
    parallel: Option<ParallelConfig>,
    snapshot: Option<Snapshot>,
    timeout: Option<Duration>,
    cancel: Option<CancellationToken>,
    trace: bool,
}

impl QueryRequest {
    fn new(text: impl Into<String>, lang: QueryLang) -> QueryRequest {
        QueryRequest {
            text: text.into(),
            lang,
            generation: None,
            config: None,
            parallel: None,
            snapshot: None,
            timeout: None,
            cancel: None,
            trace: false,
        }
    }

    /// A SPARQL request with every option defaulted: newest generation,
    /// database-default [`ExecConfig`], sequential, current data, no
    /// deadline, no trace.
    pub fn sparql(text: impl Into<String>) -> QueryRequest {
        QueryRequest::new(text, QueryLang::Sparql)
    }

    /// A SQL request against the emergent relational view (requires
    /// [`Database::self_organize`] first). Same defaults as
    /// [`sparql`](Self::sparql); [`generation`](Self::generation) is
    /// ignored — SQL always reads the clustered generation.
    pub fn sql(text: impl Into<String>) -> QueryRequest {
        QueryRequest::new(text, QueryLang::Sql)
    }

    /// Pin the storage generation (default: newest built).
    pub fn generation(mut self, generation: Generation) -> QueryRequest {
        self.generation = Some(generation);
        self
    }

    /// Override the database's default engine configuration.
    pub fn config(mut self, config: ExecConfig) -> QueryRequest {
        self.config = Some(config);
        self
    }

    /// Execute with morsel-parallel operators (see [`sordf_engine::parallel`]).
    /// Non-aggregate results are byte-identical to the sequential path;
    /// SUM/AVG aggregates may differ in the last ulp (canonical forms agree).
    pub fn parallel(mut self, parallel: ParallelConfig) -> QueryRequest {
        self.parallel = Some(parallel);
        self
    }

    /// Pin the visible data to a write [`Snapshot`] (see
    /// [`Database::snapshot`]); later writes are invisible.
    pub fn snapshot(mut self, snapshot: Snapshot) -> QueryRequest {
        self.snapshot = Some(snapshot);
        self
    }

    /// Fail with [`Error::Timeout`] once this much time has passed —
    /// measured from [`Database::execute`] entry, enforced cooperatively at
    /// page granularity inside the engine.
    pub fn timeout(mut self, timeout: Duration) -> QueryRequest {
        self.timeout = Some(timeout);
        self
    }

    /// Attach a cancellation token; [`CancellationToken::cancel`] from any
    /// thread fails the query with [`Error::Cancelled`] within one page of
    /// work.
    pub fn cancel(mut self, cancel: CancellationToken) -> QueryRequest {
        self.cancel = Some(cancel);
        self
    }

    /// Collect operator and buffer-pool statistics into
    /// [`QueryResponse::stats`] / [`QueryResponse::pool`].
    pub fn traced(mut self, trace: bool) -> QueryRequest {
        self.trace = trace;
        self
    }

    /// The query text.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// The query language.
    pub fn lang(&self) -> QueryLang {
        self.lang
    }

    /// The token execution actually polls: the caller's token, the timeout,
    /// or their combination (earliest deadline wins, cancellation shared).
    fn effective_token(&self) -> Option<CancellationToken> {
        let deadline = self.timeout.and_then(|t| Instant::now().checked_add(t));
        match (&self.cancel, deadline) {
            (None, None) => None,
            (Some(t), None) => Some(t.clone()),
            (None, Some(d)) => Some(CancellationToken::with_deadline(Some(d))),
            (Some(t), Some(d)) => Some(t.with_deadline_floor(d)),
        }
    }
}

/// What [`Database::execute`] returns.
///
/// # Decoding results
///
/// `results` holds OIDs valid under the dictionary the query executed
/// against, and a concurrent reorganization installs a *renumbered*
/// dictionary — so results must be decoded through the [`DictPin`] carried
/// here (`resp.results.canonical(&resp.pin)`), never through a fresh
/// [`Database::dict`] taken after the query returns. The pin also keeps that
/// dictionary generation alive for as long as you hold the response.
#[derive(Debug)]
pub struct QueryResponse {
    pub results: ResultSet,
    /// Read pin on the dictionary the query executed under — the only
    /// correct way to decode `results` (see the type-level docs).
    pub pin: DictPin,
    /// Operator statistics, when the request was [`QueryRequest::traced`].
    pub stats: Option<StatsSnapshot>,
    /// Buffer-pool activity attributable to this query, when traced.
    pub pool: Option<PoolStats>,
}

/// Thresholds that drive adaptive reorganization ([`Database::maybe_reorganize`]).
/// The decision reads [`DriftStats`]: reorganize once enough writes have
/// accumulated **and** one of the drift ratios crossed its bound.
#[derive(Debug, Clone, Copy)]
pub struct ReorgPolicy {
    /// Minimum accumulated writes (inserts + tombstones) before a
    /// reorganization is even considered — reorganizing a near-empty delta
    /// is all cost, no locality.
    pub min_delta_triples: u64,
    /// Fire when (inserts + tombstones) / base exceeds this.
    pub max_delta_ratio: f64,
    /// Fire when the irregular-triple ratio (base irregular + unorganized
    /// delta, over all visible triples) exceeds this.
    pub max_irregular_ratio: f64,
    /// Fire when the fraction of delta subjects the incremental assigner
    /// could not route to any existing class exceeds this — the emergent
    /// schema itself has drifted and discovery must re-run.
    pub max_unmatched_ratio: f64,
}

impl Default for ReorgPolicy {
    fn default() -> ReorgPolicy {
        ReorgPolicy {
            min_delta_triples: 4096,
            max_delta_ratio: 0.10,
            max_irregular_ratio: 0.25,
            max_unmatched_ratio: 0.50,
        }
    }
}

impl ReorgPolicy {
    /// Fire on any pending write — tests and interactive use.
    pub fn eager() -> ReorgPolicy {
        ReorgPolicy {
            min_delta_triples: 1,
            max_delta_ratio: 0.0,
            max_irregular_ratio: 0.0,
            max_unmatched_ratio: 0.0,
        }
    }

    /// Why this policy fires on `drift`, or `None` to keep accumulating.
    pub fn trigger_reason(&self, drift: &DriftStats) -> Option<String> {
        let writes = drift.n_delta_inserts + drift.n_tombstones;
        if writes < self.min_delta_triples {
            return None;
        }
        if drift.delta_ratio() > self.max_delta_ratio {
            return Some(format!(
                "delta ratio {:.4} > {:.4}",
                drift.delta_ratio(),
                self.max_delta_ratio
            ));
        }
        if drift.irregular_ratio() > self.max_irregular_ratio {
            return Some(format!(
                "irregular ratio {:.4} > {:.4}",
                drift.irregular_ratio(),
                self.max_irregular_ratio
            ));
        }
        if drift.unmatched_subjects > 0 && drift.unmatched_ratio() > self.max_unmatched_ratio {
            return Some(format!(
                "unmatched subject ratio {:.4} > {:.4}",
                drift.unmatched_ratio(),
                self.max_unmatched_ratio
            ));
        }
        None
    }
}

/// What a reorganization ([`Database::maybe_reorganize`],
/// [`Database::reorganize_async`]) decided and did.
#[derive(Debug, Clone)]
pub struct ReorgOutcome {
    /// Did the policy fire (or was the reorganization unconditional)?
    pub fired: bool,
    /// Was a fresh generation actually swapped in? `false` when the rebuild
    /// was superseded by a concurrent bulk load / explicit build, which
    /// invalidated the snapshot it was built from.
    pub swapped: bool,
    /// The policy threshold that fired, if any.
    pub reason: Option<String>,
    /// Drift at decision time.
    pub drift_before: DriftStats,
    /// Irregular-triple ratio of the fresh clustered generation (only when
    /// swapped and the database is organized).
    pub irregular_ratio_after: Option<f64>,
    /// The clustering report of the fresh generation, if swapped.
    pub report: Option<ReorgReport>,
}

/// Write-path bookkeeping between reorganizations: the incremental CS
/// assigner plus the routing decisions it made for delta-new subjects.
struct WriteState {
    assigner: IncrementalAssigner,
    /// Delta-new subjects (not in the base assignment): the union of their
    /// inserted property sets, sorted + deduplicated.
    pending_props: FxHashMap<Oid, Vec<Oid>>,
    /// Subjects the assigner routed to an existing class.
    pending_class: FxHashMap<Oid, ClassId>,
    /// Pending delta triples per class (base-assigned or routed subjects).
    per_class_fill: Vec<u64>,
}

/// The durable side of a database opened with [`Database::open`] /
/// [`Database::create_durable`]: the live write-ahead log plus manifest
/// bookkeeping. Lives inside the state lock, so logging an applied write
/// and applying it are one atomic step with respect to other writers.
struct DurableState {
    /// The durable directory (MANIFEST, `snap.<N>`, `wal.<N>`, data.db).
    dir: PathBuf,
    /// The live log (`wal.<wal_file>`), positioned to append.
    wal: WalWriter,
    /// When appends are fsync'd (the acknowledgment barrier).
    policy: SyncPolicy,
    /// Number of the live snapshot file.
    snap_file: u64,
    /// Number of the live WAL file.
    wal_file: u64,
    /// Log sequence of the last appended record. Advances by exactly one
    /// per applied write batch, in lockstep with the delta sequence while
    /// the store is organized — the generation swap relies on that to
    /// rotate the WAL down to exactly the catch-up suffix.
    seq: u64,
}

/// The mutable core the state lock protects. Everything a query needs is
/// cloned *out* of here at query start (generation handle + delta view);
/// writers mutate under the lock; a generation swap replaces `gen` and
/// `delta` wholesale.
struct State {
    /// The current generation. Queries clone the handle; rebuilds pin it.
    gen: GenerationHandle,
    /// Pending writes since the last (re)build: insert runs + tombstones,
    /// snapshot-sequenced. Queries merge this with the base generations.
    delta: DeltaStore,
    /// Incremental CS routing state for the pending writes.
    write: Option<WriteState>,
    /// The schema configuration of the last discovery — reused for
    /// incremental routing admissibility and for re-discovery during
    /// reorganization, so a custom config survives the lifecycle.
    schema_cfg: SchemaConfig,
    /// Bumped whenever `gen` is replaced or its base content changes. A
    /// rebuild records the epoch it pinned; the swap refuses (is
    /// *superseded*) if the epoch moved, because its input snapshot no
    /// longer describes the base.
    epoch: u64,
    /// The epoch claimed by an in-flight rebuild (`None` when idle). At
    /// most one rebuild runs at a time.
    rebuild: Option<u64>,
    /// WAL + manifest when the database is durable; `None` for in-memory /
    /// cache-only databases (and during recovery replay, so replaying
    /// logged writes does not re-log them).
    durable: Option<DurableState>,
    /// Page-encoding scheme for the *next* build/reorganization (already
    /// built generations keep the scheme recorded on them).
    encoding: ColumnEncoding,
}

/// Shared interior of [`Database`]: everything queries, writers and the
/// background rebuild worker touch. `Database` itself adds only per-handle
/// defaults (exec config) and the auto-reorg thread handle.
struct DbInner {
    dm: Arc<DiskManager>,
    pool: BufferPool,
    state: Mutex<State>,
    /// Optimized physical plans keyed on query *shape* (normalized BGP +
    /// select/filter structure with constants abstracted + generation +
    /// scheme + zone maps). Epoch-stamped: a generation swap or base change
    /// bumps [`State::epoch`], and the first lookup under the new epoch
    /// clears the cache — cached plans reference OIDs of the pinned
    /// dictionary, which a swap renumbers. Pending delta writes do *not*
    /// bump the epoch: a cached plan stays correct under writes (the plan
    /// is executable against any snapshot), merely possibly stale-optimal
    /// until the next swap re-plans with drift-adjusted statistics.
    plans: Mutex<PlanCache>,
}

/// See [`DbInner::plans`].
#[derive(Default)]
struct PlanCache {
    /// The [`State::epoch`] the cached plans were optimized under.
    epoch: u64,
    map: HashMap<String, Arc<PhysicalPlan>>,
    hits: u64,
    misses: u64,
    invalidations: u64,
}

/// Plan-cache counters (see [`Database::plan_cache_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Cached plans currently held.
    pub entries: u64,
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that ran the optimizer.
    pub misses: u64,
    /// Whole-cache invalidations (epoch bumps observed).
    pub invalidations: u64,
}

/// Per-component resident-byte accounting (see [`Database::memory_stats`]).
/// Approximate by design: page bytes and pool contents are exact, hash-index
/// and allocator overheads are estimated.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryStats {
    /// Dictionary pools: IRIs, blank nodes and string literals, including
    /// their hash indexes and the front-coded frozen string run.
    pub dict_bytes: u64,
    /// The base triple set (parse-order `Vec<Triple>`).
    pub base_triples_bytes: u64,
    /// Encoded column/index pages across every built layout (baseline
    /// permutations, CS tables, clustered segments and their irregular
    /// remainders) — the bytes a full scan must touch.
    pub column_bytes: u64,
    /// What those same pages would occupy under plain (uncompressed)
    /// encoding; `column_plain_bytes / column_bytes` is the column-store
    /// compression ratio.
    pub column_plain_bytes: u64,
    /// Pending delta writes (insert runs + tombstones).
    pub delta_bytes: u64,
    /// Visible triples backing the `bytes_per_triple` ratio.
    pub n_triples: u64,
    /// Column bytes split by layout family (`column_bytes` is their sum):
    /// baseline permutations, CS-table segments, clustered segments, and
    /// the irregular remainders of both table stores.
    pub classes: [ClassBytes; 4],
    /// Resident bytes of the front-coded frozen string run — the
    /// dictionary-side analogue of `column_bytes` (0 before the first
    /// string sort).
    pub dict_string_bytes: u64,
    /// What that frozen run would occupy stored as plain `String`s.
    pub dict_string_plain_bytes: u64,
}

/// Encoded vs plain-counterfactual bytes of one column layout family.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassBytes {
    /// Layout family: `baseline`, `cs_tables`, `clustered` or `irregular`.
    pub name: &'static str,
    /// Bytes the encoded pages occupy.
    pub encoded: u64,
    /// Bytes the same pages would occupy unencoded.
    pub plain: u64,
}

impl ClassBytes {
    /// Compression ratio (`plain / encoded`); 1.0 when the class is empty.
    pub fn ratio(&self) -> f64 {
        if self.encoded == 0 {
            1.0
        } else {
            self.plain as f64 / self.encoded as f64
        }
    }
}

impl MemoryStats {
    /// Everything accounted, summed.
    pub fn total_bytes(&self) -> u64 {
        self.dict_bytes + self.base_triples_bytes + self.column_bytes + self.delta_bytes
    }

    /// Resident bytes per visible triple (the paper's headline storage
    /// metric); 0.0 on an empty store.
    pub fn bytes_per_triple(&self) -> f64 {
        if self.n_triples == 0 {
            0.0
        } else {
            self.total_bytes() as f64 / self.n_triples as f64
        }
    }

    /// Column-store compression ratio (`plain / encoded`); 1.0 when nothing
    /// is built.
    pub fn column_compression_ratio(&self) -> f64 {
        if self.column_bytes == 0 {
            1.0
        } else {
            self.column_plain_bytes as f64 / self.column_bytes as f64
        }
    }
}

/// What one query pins at query start: a generation handle, a pin on that
/// generation's dictionary and the delta view of its write snapshot.
/// Everything is owned/shared — a concurrent swap cannot invalidate it.
#[must_use = "bind the Pin for the query's lifetime; it keeps the pinned generation alive"]
struct Pin {
    gen: GenerationHandle,
    dict: DictPin,
    delta: Option<Arc<DeltaView>>,
    /// The [`State::epoch`] observed at pin time (plan-cache stamping).
    epoch: u64,
}

impl DbInner {
    /// Pin the current generation + delta view (or a historical view for a
    /// pinned snapshot). The state lock is held only long enough to clone
    /// two `Arc`s (plus O(delta) when materializing a historical view).
    // lock-order: acquires(db_state, dict)
    fn pin(&self, snap: Option<Snapshot>) -> Pin {
        let (gen, delta, epoch) = {
            let st = self.state.lock();
            let delta = match snap {
                Some(s) if s.seq() != st.delta.seq() => {
                    let v = st.delta.view_at(s);
                    if v.is_empty() {
                        None
                    } else {
                        Some(Arc::new(v))
                    }
                }
                _ => st.delta.current_view_arc(),
            };
            (Arc::clone(&st.gen), delta, st.epoch)
        };
        let dict = gen.pin_dict();
        Pin {
            gen,
            dict,
            delta,
            epoch,
        }
    }

    /// [`pin`](Self::pin), plus a clone of the incremental assigner's
    /// routing table (delta-new subject → class). The SQL compiler uses it
    /// to widen each table's segment restriction so pending inserts stay
    /// visible; both are captured under one state-lock acquisition so the
    /// routing is consistent with the pinned delta view.
    // lock-order: acquires(db_state, dict)
    fn pin_with_routing(&self, snap: Option<Snapshot>) -> (Pin, FxHashMap<Oid, ClassId>) {
        let (gen, delta, epoch, routed) = {
            let st = self.state.lock();
            let delta = match snap {
                Some(s) if s.seq() != st.delta.seq() => {
                    let v = st.delta.view_at(s);
                    if v.is_empty() {
                        None
                    } else {
                        Some(Arc::new(v))
                    }
                }
                _ => st.delta.current_view_arc(),
            };
            let routed = st
                .write
                .as_ref()
                .map(|w| w.pending_class.clone())
                .unwrap_or_default();
            (Arc::clone(&st.gen), delta, st.epoch, routed)
        };
        let dict = gen.pin_dict();
        (
            Pin {
                gen,
                dict,
                delta,
                epoch,
            },
            routed,
        )
    }

    /// Fetch a cached plan for `key` (stamped `epoch`), or optimize via
    /// `make` and cache the result. An epoch change clears the whole cache
    /// first — every cached plan references the superseded dictionary.
    ///
    /// The `plans` mutex is unranked and leaf-only: held just for the map
    /// access, never across `pin()`/`state` acquisitions or the optimizer.
    fn cached_plan(
        &self,
        key: String,
        epoch: u64,
        make: impl FnOnce() -> PhysicalPlan,
    ) -> Arc<PhysicalPlan> {
        {
            let mut pc = self.plans.lock();
            if pc.epoch != epoch {
                pc.map.clear();
                pc.epoch = epoch;
                pc.invalidations += 1;
            }
            if let Some(pp) = pc.map.get(&key).map(Arc::clone) {
                pc.hits += 1;
                return pp;
            }
            pc.misses += 1;
        }
        // Optimize outside the lock — concurrent same-shape queries may
        // both optimize; last insert wins, both plans are valid.
        let pp = Arc::new(make());
        let mut pc = self.plans.lock();
        if pc.epoch == epoch {
            pc.map.insert(key, Arc::clone(&pp));
        }
        pp
    }

    // lock-order: acquires(db_state)
    fn drift_stats(&self) -> DriftStats {
        drift_stats_locked(&self.state.lock())
    }
}

/// The self-organizing RDF database.
///
/// Thread-safe with interior mutability: queries take `&self` and *pin*
/// the generation they run against; writes also take `&self` and serialize
/// on an internal state lock. `&mut self` remains only where a second
/// handle must not exist (starting/stopping the auto-reorg thread).
pub struct Database {
    inner: Arc<DbInner>,
    /// Default engine configuration used by [`Database::query`].
    config: ExecConfig,
    /// The auto-reorganization thread, if started.
    auto: Option<AutoReorg>,
}

impl Database {
    /// A database backed by a temp file (deleted on drop).
    pub fn in_temp_dir() -> Result<Database, Error> {
        Ok(Database::with_disk(Arc::new(DiskManager::temp()?)))
    }

    /// A database backed by the given file (truncated).
    pub fn create(path: &Path) -> Result<Database, Error> {
        Ok(Database::with_disk(Arc::new(DiskManager::create(path)?)))
    }

    fn with_disk(dm: Arc<DiskManager>) -> Database {
        let pool = BufferPool::new(Arc::clone(&dm), 4096); // 256 MiB cache
        Database {
            inner: Arc::new(DbInner {
                dm,
                pool,
                plans: Mutex::new(PlanCache::default()),
                state: Mutex::new(State {
                    gen: Arc::new(StoreGeneration::staging(Dictionary::new(), Vec::new())),
                    delta: DeltaStore::new(),
                    write: None,
                    schema_cfg: SchemaConfig::default(),
                    epoch: 0,
                    rebuild: None,
                    durable: None,
                    encoding: ColumnEncoding::default(),
                }),
            }),
            config: ExecConfig::default(),
            auto: None,
        }
    }

    // ---- durability --------------------------------------------------------

    /// Open (or create) a **durable** database in `dir` with the strictest
    /// policy, [`SyncPolicy::Always`]: every write batch is fsync'd to the
    /// write-ahead log before the call returns, so an acknowledged write
    /// survives any crash. An existing directory is recovered: the live
    /// checkpoint snapshot is reloaded, its layouts are rebuilt, and every
    /// intact WAL record after the checkpoint is replayed (the log is
    /// truncated at the first torn or corrupt frame).
    pub fn open(dir: &Path) -> Result<Database, Error> {
        Database::open_with_policy(dir, SyncPolicy::Always)
    }

    /// [`Database::open`] with an explicit durability policy.
    pub fn open_with_policy(dir: &Path, policy: SyncPolicy) -> Result<Database, Error> {
        fs::create_dir_all(dir)?;
        match Manifest::read(dir)? {
            None => Database::init_durable(dir, policy),
            Some(m) => Database::recover(dir, m, policy),
        }
    }

    /// Create a **fresh** durable database in `dir` (which must not already
    /// hold one). Use [`Database::open`] to recover an existing directory.
    pub fn create_durable(dir: &Path, policy: SyncPolicy) -> Result<Database, Error> {
        fs::create_dir_all(dir)?;
        if Manifest::path(dir).exists() {
            return Err(Error::State(format!(
                "{} already holds a durable database; use Database::open",
                dir.display()
            )));
        }
        Database::init_durable(dir, policy)
    }

    /// Commit the empty initial checkpoint (`snap.0` + `wal.0` + MANIFEST)
    /// so any later crash finds a committed state to recover to.
    // lock-order: acquires(db_state)
    fn init_durable(dir: &Path, policy: SyncPolicy) -> Result<Database, Error> {
        let db = Database::with_disk(Arc::new(DiskManager::create(&dir.join("data.db"))?));
        let snap = StoreSnapshot {
            base_seq: 0,
            flags: LayoutFlags::default(),
            schema_cfg: SchemaConfig::default(),
            triples: Vec::new(),
        };
        snap.write_to(&Manifest::snap_path(dir, 0))?;
        let wal = WalWriter::create(&Manifest::wal_path(dir, 0))?;
        let m = Manifest {
            snap_file: 0,
            wal_file: 0,
            base_seq: 0,
        };
        m.commit(dir)?;
        // A half-created directory may hold leftovers from a crash before
        // the first commit.
        m.remove_orphans(dir)?;
        db.inner.state.lock().durable = Some(DurableState {
            dir: dir.to_path_buf(),
            wal,
            policy,
            snap_file: 0,
            wal_file: 0,
            seq: 0,
        });
        Ok(db)
    }

    /// Recovery: reload the live checkpoint, rebuild its layouts in the
    /// deterministic order `self_organize` → `build_cs_tables` →
    /// `build_baseline`, then replay the WAL suffix through the public
    /// write paths. The durable handle is installed only *after* the
    /// replay, so replayed writes are not logged a second time.
    // lock-order: acquires(db_state)
    fn recover(dir: &Path, m: Manifest, policy: SyncPolicy) -> Result<Database, Error> {
        let snap = StoreSnapshot::read_from(&Manifest::snap_path(dir, m.snap_file))?;
        let (wal, records) = WalWriter::open_recover(&Manifest::wal_path(dir, m.wal_file))?;
        // The page file is a derived cache: recovery rebuilds every column
        // from the logical snapshot, so it starts from scratch.
        let db = Database::with_disk(Arc::new(DiskManager::create(&dir.join("data.db"))?));
        if !snap.triples.is_empty() {
            db.load_terms(&snap.triples)?;
        }
        {
            let mut st = db.inner.state.lock();
            st.schema_cfg = snap.schema_cfg.clone();
            // Restore the recorded scheme before any rebuild below.
            st.encoding = snap.flags.encoding();
        }
        if snap.flags.clustered {
            db.self_organize()?;
        }
        if snap.flags.cs_parse_order {
            db.build_cs_tables()?;
        }
        if snap.flags.baseline {
            db.build_baseline()?;
        }
        if snap.flags.schema && !snap.flags.clustered && !snap.flags.cs_parse_order {
            db.discover_schema(&snap.schema_cfg)?;
        }
        let mut last_seq = m.base_seq;
        for (_lsn, seq, record) in records {
            if seq <= m.base_seq {
                continue; // already folded into the snapshot
            }
            match &record {
                WalRecord::Insert(t) => {
                    db.insert_terms(t)?;
                }
                WalRecord::Delete(t) => {
                    db.delete_triples(t)?;
                }
                WalRecord::Load(t) => {
                    db.load_terms(t)?;
                }
            }
            last_seq = seq;
        }
        db.inner.state.lock().durable = Some(DurableState {
            dir: dir.to_path_buf(),
            wal,
            policy,
            snap_file: m.snap_file,
            wal_file: m.wal_file,
            seq: last_seq,
        });
        Ok(db)
    }

    /// Set the page-encoding scheme for **subsequently built** generations
    /// (compressed frame-of-reference pages by default). Already-built
    /// layouts keep their scheme until the next build or reorganization
    /// rebuilds them; call [`Database::reorganize_now`] to re-encode in
    /// place. The scheme is persisted in the manifest and restored by
    /// recovery.
    // lock-order: acquires(db_state)
    pub fn set_encoding(&self, encoding: ColumnEncoding) {
        self.inner.state.lock().encoding = encoding;
    }

    /// The page-encoding scheme of the current generation's layouts.
    // lock-order: acquires(db_state)
    pub fn encoding(&self) -> ColumnEncoding {
        self.inner.state.lock().gen.encoding
    }

    /// Set the WAL record encoding for subsequent write batches (N-Triples
    /// text by default). Takes effect immediately and survives WAL
    /// rotations (checkpoints, generation swaps); already-written records
    /// keep their encoding — recovery auto-detects per record, so a log may
    /// mix both. No-op on a non-durable database.
    // lock-order: acquires(db_state)
    pub fn set_wal_format(&self, format: WalFormat) {
        if let Some(d) = self.inner.state.lock().durable.as_mut() {
            d.wal.set_format(format);
        }
    }

    /// The WAL record encoding of subsequent appends; `None` when not
    /// durable.
    // lock-order: acquires(db_state)
    pub fn wal_format(&self) -> Option<WalFormat> {
        self.inner
            .state
            .lock()
            .durable
            .as_ref()
            .map(|d| d.wal.format())
    }

    /// Is this database durable (opened via [`Database::open`] /
    /// [`Database::create_durable`])?
    // lock-order: acquires(db_state)
    pub fn is_durable(&self) -> bool {
        self.inner.state.lock().durable.is_some()
    }

    /// Force any policy-deferred WAL tail to stable storage (a no-op under
    /// [`SyncPolicy::Always`], and on non-durable databases).
    // lock-order: acquires(db_state)
    pub fn flush_wal(&self) -> Result<(), Error> {
        if let Some(d) = self.inner.state.lock().durable.as_mut() {
            d.wal.sync()?;
        }
        Ok(())
    }

    /// Write a full checkpoint: snapshot the current visible triples (base
    /// merged with the delta), rotate to a fresh empty WAL and commit the
    /// manifest, bounding both recovery replay time and log size. The
    /// in-memory state is untouched — on recovery the checkpointed delta
    /// simply starts out folded into the base, which is logically
    /// equivalent. Errors on non-durable databases.
    // lock-order: acquires(db_state, dict)
    pub fn checkpoint(&self) -> Result<(), Error> {
        let mut st = self.inner.state.lock();
        if st.durable.is_none() {
            return Err(Error::State("not a durable database".into()));
        }
        checkpoint_locked(&mut st)
    }

    /// Merge the delta store's insert runs into one, physically dropping
    /// run triples already killed by tombstones (which are kept — they
    /// still filter the base). Off the write path: run it from a
    /// maintenance thread when [`Database::delta_runs`] grows. Historical
    /// snapshots below the current sequence are clamped up to it afterwards
    /// (exactly like a reorganization folds history into the base).
    /// Returns `false` (without compacting) while a rebuild is in flight —
    /// the swap's catch-up fold needs the original per-batch runs.
    // lock-order: acquires(db_state)
    pub fn compact_delta(&self) -> Result<bool, Error> {
        let mut st = self.inner.state.lock();
        if st.rebuild.is_some() || st.delta.n_runs() <= 1 {
            return Ok(false);
        }
        st.delta.compact_runs();
        Ok(true)
    }

    /// Number of insert runs currently in the delta store.
    // lock-order: acquires(db_state)
    pub fn delta_runs(&self) -> usize {
        self.inner.state.lock().delta.n_runs()
    }

    // ---- loading -----------------------------------------------------------

    /// Bulk-load an N-Triples document into the staging set. Collapses any
    /// pending delta writes into the base first, then invalidates built
    /// stores (the next build sees everything). For incremental writes after
    /// a build, use [`Database::insert_ntriples`].
    pub fn load_ntriples(&self, text: &str) -> Result<usize, Error> {
        let parsed = ntriples::parse_document(text)?;
        self.load_terms(&parsed)
    }

    /// Bulk-load term triples from a generator. Same semantics as
    /// [`Database::load_ntriples`].
    // lock-order: acquires(db_state)
    pub fn load_terms(&self, triples: &[TermTriple]) -> Result<usize, Error> {
        let mut st = self.inner.state.lock();
        load_terms_locked(&mut st, triples)
    }

    /// Number of visible triples: base triples minus tombstoned ones, plus
    /// visible delta inserts.
    // lock-order: acquires(db_state)
    pub fn n_triples(&self) -> usize {
        let st = self.inner.state.lock();
        match st.delta.current_view() {
            None => st.gen.triples.len(),
            Some(view) => {
                let deleted_base = if view.n_tombstones() == 0 {
                    0
                } else {
                    st.gen
                        .triples
                        .iter()
                        .filter(|t| view.is_deleted(**t))
                        .count()
                };
                st.gen.triples.len() - deleted_base + view.n_inserts()
            }
        }
    }

    /// Pin the current generation's dictionary. Holding a pin never blocks
    /// (or deadlocks) anything: the dictionary interns through `&self`
    /// (append-only pools, lock-free reads), so writers grow it in place
    /// while pins are open, and a generation swap installs a new dictionary
    /// outright. A pin observes terms interned into its generation after it
    /// was taken (the OIDs it already resolved never move); it stops
    /// following the live store only once a swap replaces the generation.
    // lock-order: acquires(db_state)
    pub fn dict(&self) -> DictPin {
        let gen = Arc::clone(&self.inner.state.lock().gen);
        gen.pin_dict()
    }

    // ---- writes (the delta path) -------------------------------------------

    /// Insert an N-Triples document. Before any generation is built this is
    /// plain staging ([`Database::load_ntriples`]); afterwards the triples
    /// land in the delta store — sorted in-memory runs the query engine
    /// merges with the base scans — and each inserted subject is routed
    /// against the discovered schema for drift tracking. No built column is
    /// touched; call [`Database::maybe_reorganize`] (or let a background
    /// reorganization run) to fold the delta into a fresh organized
    /// generation when drift warrants it.
    pub fn insert_ntriples(&self, text: &str) -> Result<usize, Error> {
        let parsed = ntriples::parse_document(text)?;
        self.insert_terms(&parsed)
    }

    /// Insert term triples (the [`Database::insert_ntriples`] of generators).
    // lock-order: acquires(db_state)
    pub fn insert_terms(&self, triples: &[TermTriple]) -> Result<usize, Error> {
        if triples.is_empty() {
            return Ok(0);
        }
        let mut st = self.inner.state.lock();
        if !st.gen.any_built() {
            return load_terms_locked(&mut st, triples);
        }
        let st = &mut *st;
        let (encoded, strings_appended) = intern_batch(st, |dict| {
            let mut encoded = Vec::with_capacity(triples.len());
            for t in triples {
                encoded.push(encode_triple_skolemized(dict, t)?);
            }
            Ok(encoded)
        })?;
        // Write-ahead: the batch reaches the log (and, under Always, the
        // disk) before any in-memory structure sees it.
        if st.durable.is_some() {
            log_write(st, &WalRecord::Insert(triples.to_vec()))?;
        }
        route_inserts(
            &mut st.write,
            st.gen.schema.as_deref(),
            &st.schema_cfg,
            &encoded,
        );
        if strings_appended {
            st.delta.set_strings_appended();
        }
        let _ = st.delta.insert_run(encoded);
        Ok(triples.len())
    }

    /// Delete exact triples (RDF set semantics: every visible occurrence of
    /// each triple is removed). Unknown terms match nothing. Deletes are
    /// tombstones — base columns are untouched; scans filter. Returns the
    /// number of distinct triples actually deleted.
    // lock-order: acquires(db_state, dict)
    pub fn delete_triples(&self, triples: &[TermTriple]) -> Result<usize, Error> {
        let mut st = self.inner.state.lock();
        let mut targets = Vec::with_capacity(triples.len());
        {
            let dict = st.gen.dict.as_ref();
            for t in triples {
                let (Some(s), Some(p), Some(o)) = (
                    term_oid_skolemized(dict, &t.s),
                    term_oid_skolemized(dict, &t.p),
                    term_oid_skolemized(dict, &t.o),
                ) else {
                    continue;
                };
                targets.push(Triple::new(s, p, o));
            }
        }
        targets.sort_unstable();
        targets.dedup();
        delete_encoded_locked(&mut st, targets)
    }

    /// Delete every visible triple matching the pattern (`None` = wildcard).
    /// Returns the number of distinct triples deleted.
    // lock-order: acquires(db_state, dict)
    pub fn delete_matching(
        &self,
        s: Option<&Term>,
        p: Option<&Term>,
        o: Option<&Term>,
    ) -> Result<usize, Error> {
        let mut st = self.inner.state.lock();
        let (s, p, o) = {
            let dict = st.gen.dict.as_ref();
            let enc = |t: Option<&Term>| -> Result<Option<Oid>, ()> {
                match t {
                    None => Ok(None),
                    Some(term) => match term_oid_skolemized(dict, term) {
                        Some(oid) => Ok(Some(oid)),
                        None => Err(()), // unknown term: nothing can match
                    },
                }
            };
            match (enc(s), enc(p), enc(o)) {
                (Ok(s), Ok(p), Ok(o)) => (s, p, o),
                _ => return Ok(0),
            }
        };
        let matches = |t: &Triple| {
            s.map_or(true, |x| t.s == x)
                && p.map_or(true, |x| t.p == x)
                && o.map_or(true, |x| t.o == x)
        };
        let mut targets: Vec<Triple> = {
            let view = st.delta.current_view();
            let mut v: Vec<Triple> = st
                .gen
                .triples
                .iter()
                .filter(|t| matches(t) && view.map_or(true, |d| !d.is_deleted(**t)))
                .copied()
                .collect();
            if let Some(d) = view {
                v.extend(d.inserts().iter().filter(|t| matches(t)));
            }
            v
        };
        targets.sort_unstable();
        targets.dedup();
        delete_encoded_locked(&mut st, targets)
    }

    /// A snapshot of the current write sequence. Queries pinned to it via
    /// [`Database::query_snapshot`] see exactly the writes applied so far —
    /// later inserts and deletes are invisible to them (MVCC-lite: the delta
    /// store keeps every version until a reorganization folds it into the
    /// base; snapshots taken at or after a background rebuild's pin stay
    /// valid across the swap, older ones are clamped to the fold point).
    // lock-order: acquires(db_state)
    pub fn snapshot(&self) -> Snapshot {
        self.inner.state.lock().delta.snapshot()
    }

    /// Run a SPARQL query pinned to a [`Snapshot`] (newest generation,
    /// default configuration).
    pub fn query_snapshot(&self, sparql: &str, snap: Snapshot) -> Result<ResultSet, Error> {
        Ok(self
            .execute(&QueryRequest::sparql(sparql).snapshot(snap))?
            .results)
    }

    /// Incremental-routing drift statistics: how far the live data has
    /// diverged from the organized base generation.
    pub fn drift_stats(&self) -> DriftStats {
        self.inner.drift_stats()
    }

    /// Per-component resident-byte accounting of the current state: the
    /// dictionary, the base triple set, every built layout's encoded pages
    /// (with their plain-encoding counterfactual for the compression
    /// ratio) and the pending delta. See [`MemoryStats`].
    // lock-order: acquires(db_state)
    pub fn memory_stats(&self) -> MemoryStats {
        let st = self.inner.state.lock();
        let triple = std::mem::size_of::<Triple>() as u64;
        let class = |name, encoded: usize, plain: usize| ClassBytes {
            name,
            encoded: encoded as u64,
            plain: plain as u64,
        };
        let mut classes = [
            class("baseline", 0, 0),
            class("cs_tables", 0, 0),
            class("clustered", 0, 0),
            class("irregular", 0, 0),
        ];
        if let Some(b) = &st.gen.baseline {
            classes[0] = class("baseline", b.used_bytes(), b.plain_bytes());
        }
        let cs = st.gen.cs_parse_order.iter().map(|(s, _)| (1usize, s));
        let clustered = st.gen.clustered.iter().map(|s| (2usize, s));
        for (i, store) in cs.chain(clustered) {
            classes[i].encoded += store.segment_used_bytes() as u64;
            classes[i].plain += store.segment_plain_bytes() as u64;
            classes[3].encoded += store.irregular.used_bytes() as u64;
            classes[3].plain += store.irregular.plain_bytes() as u64;
        }
        let (dict_enc, dict_plain) = st.gen.dict.string_front_coding_bytes();
        MemoryStats {
            dict_bytes: st.gen.dict.approx_bytes().total(),
            base_triples_bytes: st.gen.triples.len() as u64 * triple,
            column_bytes: classes.iter().map(|c| c.encoded).sum(),
            column_plain_bytes: classes.iter().map(|c| c.plain).sum(),
            delta_bytes: st.delta.approx_bytes(),
            n_triples: st.gen.triples.len() as u64
                + st.delta.current_view().map_or(0, |v| v.n_inserts() as u64),
            classes,
            dict_string_bytes: dict_enc,
            dict_string_plain_bytes: dict_plain,
        }
    }

    // ---- reorganization ----------------------------------------------------

    /// Adaptive reorganization: evaluate `policy` against the current
    /// [`DriftStats`] and, when a threshold fires, rebuild every live
    /// generation (schema re-discovery, subject re-clustering, fresh column
    /// segments) over the merged base + delta and swap it in behind the
    /// query API. Runs **synchronously** on the calling thread; concurrent
    /// queries keep executing against their pinned generation throughout,
    /// and writes that land mid-rebuild are folded into the fresh delta at
    /// the swap. For the non-blocking variant see
    /// [`Database::maybe_reorganize_async`].
    pub fn maybe_reorganize(&self, policy: &ReorgPolicy) -> Result<ReorgOutcome, Error> {
        let drift = self.inner.drift_stats();
        let Some(reason) = policy.trigger_reason(&drift) else {
            return Ok(ReorgOutcome {
                fired: false,
                swapped: false,
                reason: None,
                drift_before: drift,
                irregular_ratio_after: None,
                report: None,
            });
        };
        let pin = begin_rebuild(&self.inner)?;
        run_rebuild(&self.inner, pin, Some(reason), drift)
    }

    /// Unconditional synchronous reorganization: fold the pending delta into
    /// the base set and rebuild whatever generations were built (a clustered
    /// database re-runs discovery + clustering; a baseline/CS database
    /// rebuilds its indexes over the merged data).
    pub fn reorganize_now(&self) -> Result<(), Error> {
        let drift = self.inner.drift_stats();
        let pin = begin_rebuild(&self.inner)?;
        let outcome = run_rebuild(&self.inner, pin, None, drift)?;
        if outcome.swapped {
            Ok(())
        } else {
            Err(Error::State(
                "reorganization superseded by a concurrent bulk load".into(),
            ))
        }
    }

    /// Start an **asynchronous, unconditional** reorganization: pin the
    /// current generation + write snapshot, build the next generation on a
    /// worker thread, then swap it in (folding writes that arrived during
    /// the rebuild into the fresh delta). Queries and writes proceed
    /// throughout; the returned [`BackgroundReorg`] handle observes
    /// completion. The swap happens even if the handle is dropped.
    ///
    /// Errors if nothing is built yet or another rebuild is in flight.
    pub fn reorganize_async(&self) -> Result<BackgroundReorg, Error> {
        let drift = self.inner.drift_stats();
        let pin = begin_rebuild(&self.inner)?;
        Ok(spawn_rebuild(&self.inner, pin, None, drift))
    }

    /// The policy-gated variant of [`Database::reorganize_async`]: `None`
    /// when `policy` does not fire on the current drift.
    pub fn maybe_reorganize_async(
        &self,
        policy: &ReorgPolicy,
    ) -> Result<Option<BackgroundReorg>, Error> {
        let drift = self.inner.drift_stats();
        let Some(reason) = policy.trigger_reason(&drift) else {
            return Ok(None);
        };
        let pin = begin_rebuild(&self.inner)?;
        Ok(Some(spawn_rebuild(&self.inner, pin, Some(reason), drift)))
    }

    /// Is a (sync or async) rebuild currently in flight?
    // lock-order: acquires(db_state)
    pub fn reorg_in_flight(&self) -> bool {
        self.inner.state.lock().rebuild.is_some()
    }

    /// Start the auto-reorganization thread: every `interval` it evaluates
    /// `policy` against the current drift and, when a threshold fires, runs
    /// a full background rebuild + swap (the same protocol as
    /// [`Database::reorganize_async`]). Stop it deterministically with
    /// [`Database::stop_auto_reorg`]; dropping the database stops it too.
    // lock-order: acquires(db_state) — the spawned tick closure's compaction
    // branch takes the state lock.
    pub fn start_auto_reorg(
        &mut self,
        policy: ReorgPolicy,
        interval: Duration,
    ) -> Result<(), Error> {
        if self.auto.is_some() {
            return Err(Error::State("auto-reorg thread already running".into()));
        }
        let stop = Arc::new((StdMutex::new(false), Condvar::new()));
        let inner = Arc::clone(&self.inner);
        let stop2 = Arc::clone(&stop);
        let thread = thread::Builder::new()
            .name("sordf-auto-reorg".into())
            .spawn(move || {
                let (lock, cv) = &*stop2;
                loop {
                    {
                        let stopped = lock.lock().unwrap_or_else(|e| e.into_inner());
                        let (stopped, _) = cv
                            .wait_timeout_while(stopped, interval, |s| !*s)
                            .unwrap_or_else(|e| e.into_inner());
                        if *stopped {
                            return;
                        }
                    }
                    let drift = inner.drift_stats();
                    if let Some(reason) = policy.trigger_reason(&drift) {
                        // Skip the tick when another rebuild is in flight;
                        // build errors surface on the next explicit reorg.
                        if let Ok(pin) = begin_rebuild(&inner) {
                            let _ = run_rebuild(&inner, pin, Some(reason), drift);
                        }
                    } else {
                        // Below the reorg thresholds: keep the delta lean by
                        // merging accumulated small insert runs off the
                        // write path (never mid-rebuild — the swap's
                        // catch-up fold needs the per-batch runs).
                        let mut st = inner.state.lock();
                        if st.rebuild.is_none() && st.delta.n_runs() >= COMPACT_RUNS_THRESHOLD {
                            st.delta.compact_runs();
                        }
                    }
                }
            })
            .map_err(Error::Io)?;
        self.auto = Some(AutoReorg { stop, thread });
        Ok(())
    }

    /// Stop the auto-reorganization thread and join it (any rebuild it is
    /// mid-way through completes first). No-op when not running.
    pub fn stop_auto_reorg(&mut self) {
        if let Some(auto) = self.auto.take() {
            *auto.stop.0.lock().unwrap_or_else(|e| e.into_inner()) = true;
            auto.stop.1.notify_all();
            let _ = auto.thread.join();
        }
    }

    /// Is the auto-reorganization thread running?
    pub fn auto_reorg_running(&self) -> bool {
        self.auto.is_some()
    }

    // ---- building generations ----------------------------------------------

    /// Build the exhaustive-index baseline (Table I's "ParseOrder" scheme).
    // lock-order: acquires(db_state)
    pub fn build_baseline(&self) -> Result<(), Error> {
        let mut st = self.inner.state.lock();
        if st.gen.baseline.is_some() {
            return Ok(());
        }
        ensure_no_pending_writes(&st, "build_baseline()")?;
        let spo = sorted_spo(&st.gen.triples);
        let store = BaselineStore::build_with(&self.inner.dm, &spo, st.encoding);
        let encoding = st.encoding;
        let gen = Arc::make_mut(&mut st.gen);
        gen.baseline = Some(Arc::new(store));
        gen.encoding = encoding;
        st.epoch += 1;
        checkpoint_locked(&mut st)?;
        Ok(())
    }

    /// Run schema discovery (idempotent). Returns coverage.
    // lock-order: acquires(db_state)
    pub fn discover_schema(&self, cfg: &SchemaConfig) -> Result<f64, Error> {
        let mut st = self.inner.state.lock();
        let epoch = st.epoch;
        let coverage = discover_schema_locked(&mut st, cfg)?;
        if st.epoch != epoch {
            checkpoint_locked(&mut st)?;
        }
        Ok(coverage)
    }

    /// Build CS tables *without* renumbering OIDs (sparse segments) — the
    /// "RDFscan on ParseOrder" configuration.
    // lock-order: acquires(db_state)
    pub fn build_cs_tables(&self) -> Result<(), Error> {
        let mut st = self.inner.state.lock();
        let epoch = st.epoch;
        build_cs_tables_locked(&mut st, &self.inner.dm)?;
        if st.epoch != epoch {
            checkpoint_locked(&mut st)?;
        }
        Ok(())
    }

    /// Self-organize: discover the schema (if not yet done), cluster subject
    /// OIDs, sort literal OIDs, and rebuild storage as dense CS segments.
    /// Uses [`ClusterSpec::auto`] unless a spec was set via
    /// [`Database::self_organize_with`].
    // lock-order: acquires(db_state)
    pub fn self_organize(&self) -> Result<Arc<EmergentSchema>, Error> {
        let mut st = self.inner.state.lock();
        let epoch = st.epoch;
        let schema = self_organize_locked(&mut st, &self.inner.dm, None)?;
        if st.epoch != epoch {
            checkpoint_locked(&mut st)?;
        }
        Ok(schema)
    }

    /// Self-organize with an explicit clustering spec.
    // lock-order: acquires(db_state)
    pub fn self_organize_with(&self, spec: ClusterSpec) -> Result<Arc<EmergentSchema>, Error> {
        let mut st = self.inner.state.lock();
        let epoch = st.epoch;
        let schema = self_organize_locked(&mut st, &self.inner.dm, Some(spec))?;
        if st.epoch != epoch {
            checkpoint_locked(&mut st)?;
        }
        Ok(schema)
    }

    /// The discovered schema, if any.
    // lock-order: acquires(db_state)
    pub fn schema(&self) -> Option<Arc<EmergentSchema>> {
        self.inner.state.lock().gen.schema.clone()
    }

    /// The clustering report, if self-organized.
    // lock-order: acquires(db_state)
    pub fn reorg_report(&self) -> Option<ReorgReport> {
        self.inner.state.lock().gen.reorg_report.clone()
    }

    /// The clustered store, if self-organized.
    // lock-order: acquires(db_state)
    pub fn clustered_store(&self) -> Option<Arc<ClusteredStore>> {
        self.inner.state.lock().gen.clustered.clone()
    }

    /// Render the SQL view of the emergent schema.
    pub fn ddl(&self) -> Result<String, Error> {
        let pin = self.inner.pin(None);
        let schema = pin
            .gen
            .schema
            .as_ref()
            .ok_or(Error::State("no schema discovered yet".into()))?;
        Ok(schema.render_ddl(&pin.dict))
    }

    // ---- querying ----------------------------------------------------------

    /// Default engine configuration used by [`Database::query`].
    pub fn set_config(&mut self, config: ExecConfig) {
        self.config = config;
    }

    /// Drop the page cache: the next query runs *cold*.
    pub fn drop_cache(&self) {
        self.inner.pool.clear();
    }

    /// Configure synthetic per-page-read latency (models disk I/O in the
    /// cold-run experiments).
    pub fn set_read_latency_ns(&self, ns: u64) {
        self.inner.pool.set_read_latency_ns(ns);
    }

    /// Buffer pool statistics.
    pub fn pool_stats(&self) -> PoolStats {
        self.inner.pool.stats()
    }

    /// Page-file occupancy as `(high-water page count, free-listed pages)`.
    /// The difference is the pages holding live column data — the number
    /// the generation GC keeps bounded across rebuild swaps (a swapped-out
    /// generation's extents return to the free list when its last pin
    /// drops, and new builds reuse them).
    pub fn disk_pages(&self) -> (u64, usize) {
        (self.inner.dm.n_pages(), self.inner.dm.n_free_pages())
    }

    /// The underlying buffer pool (advanced use: custom execution contexts,
    /// benchmark instrumentation).
    pub fn buffer_pool(&self) -> &BufferPool {
        &self.inner.pool
    }

    /// Run every structural invariant checker over the live state: buffer
    /// pool accounting, generation/dictionary consistency and delta-store
    /// ordering. Panics on any violation. Debug builds run these
    /// automatically on the write path; stress tests call this explicitly
    /// so release-mode runs are covered too.
    // lock-order: acquires(db_state)
    pub fn validate_invariants(&self) {
        self.inner.pool.check_invariants();
        let st = self.inner.state.lock();
        st.gen.debug_validate();
        st.delta.debug_validate();
    }

    /// The newest generation that has been built.
    // lock-order: acquires(db_state)
    pub fn default_generation(&self) -> Result<Generation, Error> {
        newest_generation(&self.inner.state.lock().gen)
    }

    /// Run a SPARQL query against the newest generation with the default
    /// configuration. Shorthand for
    /// `execute(&QueryRequest::sparql(sparql))`.
    pub fn query(&self, sparql: &str) -> Result<ResultSet, Error> {
        Ok(self.execute(&QueryRequest::sparql(sparql))?.results)
    }

    /// Execute one [`QueryRequest`] — the single entry point every other
    /// query method (and the HTTP server) funnels through.
    ///
    /// Checks the request's token *before* touching any state (so time spent
    /// queueing counts against the deadline), pins the generation + delta
    /// snapshot, runs the engine with the token threaded into the execution
    /// context, and maps a mid-query interrupt to [`Error::Cancelled`] /
    /// [`Error::Timeout`] rather than a stringly [`Error::Exec`]. See
    /// [`QueryResponse`] for the result-decoding rule under concurrent
    /// reorganization.
    pub fn execute(&self, req: &QueryRequest) -> Result<QueryResponse, Error> {
        let cancel = req.effective_token();
        if let Some(t) = &cancel {
            match t.stop_reason() {
                Some(StopReason::Cancelled) => return Err(Error::Cancelled),
                Some(StopReason::TimedOut) => return Err(Error::Timeout),
                None => {}
            }
        }
        let config = req.config.unwrap_or(self.config);
        match req.lang {
            QueryLang::Sparql => {
                let (traced, pin) = self.query_traced_impl(
                    &req.text,
                    req.generation,
                    config,
                    req.parallel.as_ref(),
                    req.snapshot,
                    cancel,
                )?;
                Ok(QueryResponse {
                    results: traced.results,
                    pin,
                    stats: req.trace.then_some(traced.stats),
                    pool: req.trace.then_some(traced.pool),
                })
            }
            QueryLang::Sql => self.execute_sql(req, config, cancel),
        }
    }

    /// Run a SPARQL query pinned to a generation + configuration.
    #[deprecated(since = "0.1.0", note = "use Database::execute with a QueryRequest")]
    pub fn query_with(
        &self,
        sparql: &str,
        generation: Generation,
        config: ExecConfig,
    ) -> Result<ResultSet, Error> {
        Ok(self
            .execute(
                &QueryRequest::sparql(sparql)
                    .generation(generation)
                    .config(config),
            )?
            .results)
    }

    /// Run a SPARQL query and return operator/pool statistics with it.
    #[deprecated(
        since = "0.1.0",
        note = "use Database::execute with a traced QueryRequest"
    )]
    pub fn query_traced(
        &self,
        sparql: &str,
        generation: Generation,
        config: ExecConfig,
    ) -> Result<Traced, Error> {
        let resp = self.execute(
            &QueryRequest::sparql(sparql)
                .generation(generation)
                .config(config)
                .traced(true),
        )?;
        Ok(traced_of(resp))
    }

    /// Run a SPARQL query with morsel-parallel operators (see
    /// [`sordf_engine::parallel`]): page/row ranges are split across
    /// `parallel.workers` scoped threads sharing this database's buffer
    /// pool. Non-aggregate results are byte-identical to the sequential
    /// path (same rows, same order); SUM/AVG aggregates merge per-worker
    /// partials through the compensated accumulator and may differ from
    /// the sequential value in the last ulp (canonical/rendered forms
    /// agree — do not compare raw aggregate `f64`s bitwise).
    #[deprecated(
        since = "0.1.0",
        note = "use Database::execute with a parallel QueryRequest"
    )]
    pub fn query_parallel(
        &self,
        sparql: &str,
        parallel: &ParallelConfig,
    ) -> Result<ResultSet, Error> {
        Ok(self
            .execute(&QueryRequest::sparql(sparql).parallel(*parallel))?
            .results)
    }

    /// [`Database::query_parallel`] pinned to a generation + configuration,
    /// returning operator/pool statistics with the results.
    #[deprecated(
        since = "0.1.0",
        note = "use Database::execute with a traced QueryRequest"
    )]
    pub fn query_traced_parallel(
        &self,
        sparql: &str,
        generation: Generation,
        config: ExecConfig,
        parallel: &ParallelConfig,
    ) -> Result<Traced, Error> {
        let resp = self.execute(
            &QueryRequest::sparql(sparql)
                .generation(generation)
                .config(config)
                .parallel(*parallel)
                .traced(true),
        )?;
        Ok(traced_of(resp))
    }

    /// The shared SPARQL path. `generation: None` = newest built in the
    /// pinned generation (evaluated against the *pin*, so a concurrent swap
    /// cannot split the choice from the data it runs on).
    fn query_traced_impl(
        &self,
        sparql: &str,
        generation: Option<Generation>,
        config: ExecConfig,
        parallel: Option<&ParallelConfig>,
        snap: Option<Snapshot>,
        cancel: Option<CancellationToken>,
    ) -> Result<(Traced, DictPin), Error> {
        let pin = self.inner.pin(snap);
        let generation = match generation {
            Some(g) => g,
            None => newest_generation(&pin.gen)?,
        };
        let query = sordf_sparql::parse_sparql(sparql, &pin.dict)?;
        let storage = storage_for(&pin.gen, generation)?;
        let cx = ExecContext::new(&self.inner.pool, &pin.dict, storage, config)
            .with_delta(pin.delta.clone())
            .with_cancel(cancel);
        let pool_before = self.inner.pool.stats();
        let key = plan_cache_key(&query, generation, config, pin.gen.encoding);
        // Query-boundary fault isolation: an engine panic (e.g. a page read
        // that keeps failing after the pool's retries) fails this query, not
        // the process — the next query sees intact immutable storage. A
        // cancellation/deadline interrupt rides the same unwind and is
        // downcast back to its typed error here.
        let results = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let (q, lp) = sordf_engine::prepare(&query);
            let pp = self
                .inner
                .cached_plan(key, pin.epoch, || sordf_engine::optimize(&cx, &lp));
            match parallel {
                None => sordf_engine::execute_physical_seq(&cx, &q, &lp, &pp),
                Some(par) => sordf_engine::execute_physical_parallel(&cx, &q, &lp, &pp, par),
            }
        }))
        .map_err(interrupt_or_exec)?;
        let traced = Traced {
            results,
            stats: cx.stats.snapshot(),
            pool: self.inner.pool.stats().since(&pool_before),
        };
        drop(cx);
        Ok((traced, pin.dict))
    }

    /// Run a SPARQL query and return the results together with a read pin
    /// on the dictionary the query executed under. Under concurrent
    /// reorganization this is the only way to decode correctly: a swap
    /// installs a *renumbered* dictionary, so results must be rendered with
    /// the pinned one — `results.canonical(&pin)` — never with a fresh
    /// [`Database::dict`] taken after the query. ([`Database::execute`]
    /// returns the same pin on every [`QueryResponse`].)
    pub fn query_pinned(
        &self,
        sparql: &str,
        generation: Generation,
        config: ExecConfig,
        parallel: Option<&ParallelConfig>,
    ) -> Result<(ResultSet, DictPin), Error> {
        let mut req = QueryRequest::sparql(sparql)
            .generation(generation)
            .config(config);
        if let Some(par) = parallel {
            req = req.parallel(*par);
        }
        let resp = self.execute(&req)?;
        Ok((resp.results, resp.pin))
    }

    /// Explain the plan a SPARQL query would get: star order, the physical
    /// operator and join strategy per step, per-step cost and estimated
    /// cardinality. Always re-optimizes (never served from the plan cache),
    /// so it shows what the optimizer would pick *now*.
    pub fn explain(&self, sparql: &str) -> Result<PlanInfo, Error> {
        let pin = self.inner.pin(None);
        self.explain_pinned(&pin, sparql, newest_generation(&pin.gen)?, self.config)
    }

    /// [`Database::explain`] against an explicit generation and exec config
    /// (the EXPLAIN counterpart of [`Database::query_with`]).
    pub fn explain_with(
        &self,
        sparql: &str,
        generation: Generation,
        config: ExecConfig,
    ) -> Result<PlanInfo, Error> {
        let pin = self.inner.pin(None);
        self.explain_pinned(&pin, sparql, generation, config)
    }

    fn explain_pinned(
        &self,
        pin: &Pin,
        sparql: &str,
        generation: Generation,
        config: ExecConfig,
    ) -> Result<PlanInfo, Error> {
        let query = sordf_sparql::parse_sparql(sparql, &pin.dict)?;
        let storage = storage_for(&pin.gen, generation)?;
        let cx = ExecContext::new(&self.inner.pool, &pin.dict, storage, config)
            .with_delta(pin.delta.clone());
        Ok(sordf_engine::explain(&cx, &query))
    }

    /// EXPLAIN ANALYZE: execute the query and report the plan with per-step
    /// *actual* bound-row counts alongside the optimizer's estimates.
    pub fn explain_analyze(&self, sparql: &str) -> Result<(PlanInfo, ResultSet), Error> {
        let pin = self.inner.pin(None);
        let query = sordf_sparql::parse_sparql(sparql, &pin.dict)?;
        let storage = storage_for(&pin.gen, newest_generation(&pin.gen)?)?;
        let cx = ExecContext::new(&self.inner.pool, &pin.dict, storage, self.config)
            .with_delta(pin.delta.clone());
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sordf_engine::explain_analyze(&cx, &query)
        }))
        .map_err(|payload| Error::Exec(panic_message(payload)))
    }

    /// Cost every star-order permutation of a query: `(order, total cost)`,
    /// with the per-edge operator choices re-optimized inside each forced
    /// order. Diagnostics for the optimizer itself (is the chosen order
    /// near the best one?); factorial in the star count, so refused beyond
    /// 8 stars.
    pub fn explain_orders(&self, sparql: &str) -> Result<Vec<(Vec<usize>, f64)>, Error> {
        let pin = self.inner.pin(None);
        let query = sordf_sparql::parse_sparql(sparql, &pin.dict)?;
        let storage = storage_for(&pin.gen, newest_generation(&pin.gen)?)?;
        let cx = ExecContext::new(&self.inner.pool, &pin.dict, storage, self.config)
            .with_delta(pin.delta.clone());
        let (_q, lp) = sordf_engine::prepare(&query);
        let n = lp.stars.len();
        if n > 8 {
            return Err(Error::State(format!(
                "explain_orders is factorial; {n} stars exceeds the 8-star limit"
            )));
        }
        let mut out = Vec::new();
        let mut order: Vec<usize> = (0..n).collect();
        permutations(&mut order, 0, &mut |perm| {
            let pp = sordf_engine::optimize_with_order(&cx, &lp, perm);
            out.push((perm.to_vec(), pp.total_cost));
        });
        Ok(out)
    }

    /// Plan-cache counters: entries, hits, misses, and epoch invalidations.
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        let pc = self.inner.plans.lock();
        PlanCacheStats {
            entries: pc.map.len() as u64,
            hits: pc.hits,
            misses: pc.misses,
            invalidations: pc.invalidations,
        }
    }

    /// Run a SQL query against the emergent relational schema (requires
    /// [`Database::self_organize`] first). Shorthand for
    /// `execute(&QueryRequest::sql(sql))`.
    pub fn sql(&self, sql: &str) -> Result<ResultSet, Error> {
        Ok(self.execute(&QueryRequest::sql(sql))?.results)
    }

    /// The SQL half of [`Database::execute`]: compile against the emergent
    /// schema, run with the same fault-isolation + interrupt boundary as the
    /// SPARQL path.
    fn execute_sql(
        &self,
        req: &QueryRequest,
        config: ExecConfig,
        cancel: Option<CancellationToken>,
    ) -> Result<QueryResponse, Error> {
        let (pin, routed) = self.inner.pin_with_routing(req.snapshot);
        let (Some(store), Some(schema)) = (&pin.gen.clustered, &pin.gen.schema) else {
            return Err(Error::State(
                "SQL view requires self_organize() first".into(),
            ));
        };
        let query = sordf_sql::compile_sql(&req.text, schema, store, &pin.dict, &routed)
            .map_err(Error::Sql)?;
        let storage = StorageRef::Clustered { store, schema };
        // Deletes of base rows are respected through the delta view, and
        // rows inserted since the last reorganization are admitted through
        // the routing table captured with the pin: the compiler widens each
        // table's segment restriction to include its class's delta-routed
        // subjects, whose triples the delta merge already surfaces.
        // (At a historical snapshot, routed-but-later subjects contribute
        // nothing — their triples are absent from that delta view.)
        let cx = ExecContext::new(&self.inner.pool, &pin.dict, storage, config)
            .with_delta(pin.delta.clone())
            .with_cancel(cancel);
        let pool_before = self.inner.pool.stats();
        let results = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sordf_engine::execute(&cx, &query)
        }))
        .map_err(interrupt_or_exec)?;
        let stats = cx.stats.snapshot();
        let pool = self.inner.pool.stats().since(&pool_before);
        drop(cx);
        Ok(QueryResponse {
            results,
            pin: pin.dict,
            stats: req.trace.then_some(stats),
            pool: req.trace.then_some(pool),
        })
    }
}

/// Insert-run count at which the auto-reorg thread compacts the delta
/// between reorganizations (see [`Database::compact_delta`]).
const COMPACT_RUNS_THRESHOLD: usize = 32;

impl Drop for Database {
    // lock-order: acquires(db_state)
    fn drop(&mut self) {
        self.stop_auto_reorg();
        // A clean shutdown flushes any policy-deferred WAL tail; a failure
        // here only widens the loss window back to what the policy already
        // allowed, so it is not surfaced from Drop.
        if let Some(d) = self.inner.state.lock().durable.as_mut() {
            let _ = d.wal.sync();
        }
    }
}

// ---- state helpers (all run under the state lock) --------------------------

/// Visit every permutation of `items` (recursive Heap-style enumeration;
/// callers bound the length).
fn permutations(items: &mut [usize], k: usize, visit: &mut impl FnMut(&[usize])) {
    if k == items.len() {
        visit(items);
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permutations(items, k + 1, visit);
        items.swap(k, i);
    }
}

/// The plan-cache key: generation + engine config + the structural shape of
/// the parsed query. Variables keep their ids (plan steps reference them,
/// and ids depend on the full parse order — so the *whole* query shape is
/// serialized, not just the BGP); predicates keep their OIDs (they decide
/// the plan); object and filter constants are abstracted to `C`/`N` so one
/// cached plan serves a query family differing only in literals.
fn plan_cache_key(
    query: &sordf_engine::Query,
    generation: Generation,
    config: ExecConfig,
    encoding: ColumnEncoding,
) -> String {
    use sordf_engine::{Expr, SelectItem, VarOrOid};
    use std::fmt::Write;
    fn expr(out: &mut String, e: &Expr) {
        match e {
            Expr::Var(v) => {
                let _ = write!(out, "?{}", v.0);
            }
            Expr::Const(_) => out.push('C'),
            Expr::Num(_) => out.push('N'),
            Expr::Cmp(a, op, b) => {
                let _ = write!(out, "({op:?} ");
                expr(out, a);
                out.push(' ');
                expr(out, b);
                out.push(')');
            }
            Expr::Arith(a, op, b) => {
                let _ = write!(out, "({op:?} ");
                expr(out, a);
                out.push(' ');
                expr(out, b);
                out.push(')');
            }
            Expr::And(a, b) => {
                out.push_str("(and ");
                expr(out, a);
                out.push(' ');
                expr(out, b);
                out.push(')');
            }
            Expr::Or(a, b) => {
                out.push_str("(or ");
                expr(out, a);
                out.push(' ');
                expr(out, b);
                out.push(')');
            }
            Expr::Not(a) => {
                out.push_str("(not ");
                expr(out, a);
                out.push(')');
            }
            Expr::InSet(a, set) => {
                // Content-hash the set: only the SQL path builds InSet and
                // SQL queries are not plan-cached today, but a stale hit
                // would be silently wrong if they ever were.
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for o in set.iter() {
                    h = (h ^ o.raw()).wrapping_mul(0x0100_0000_01b3);
                }
                let _ = write!(out, "(in{}#{h:016x} ", set.len());
                expr(out, a);
                out.push(')');
            }
        }
    }
    let pos = |out: &mut String, v: VarOrOid| match v {
        VarOrOid::Var(v) => {
            let _ = write!(out, "?{}", v.0);
        }
        VarOrOid::Const(_) => out.push('C'),
    };
    let mut out = format!(
        "{generation:?}|{encoding:?}|{:?}|zm{}|v{}|",
        config.scheme,
        config.zonemaps,
        query.vars.len()
    );
    for p in &query.patterns {
        pos(&mut out, p.s);
        let _ = write!(out, " {} ", p.p.raw());
        pos(&mut out, p.o);
        out.push('.');
    }
    out.push('|');
    for f in &query.filters {
        expr(&mut out, f);
    }
    out.push('|');
    for item in &query.select {
        match item {
            SelectItem::Var(v) => {
                let _ = write!(out, "?{},", v.0);
            }
            SelectItem::Expr { expr: e, .. } => {
                out.push_str("e:");
                expr(&mut out, e);
                out.push(',');
            }
            SelectItem::Agg { func, expr: e, .. } => {
                let _ = write!(out, "a{func:?}:");
                expr(&mut out, e);
                out.push(',');
            }
        }
    }
    out.push('|');
    for g in &query.group_by {
        let _ = write!(out, "?{},", g.0);
    }
    let _ = write!(
        out,
        "|o{:?}|l{:?}|d{}",
        query
            .order_by
            .iter()
            .map(|k| (k.output, k.ascending))
            .collect::<Vec<_>>(),
        query.limit,
        query.distinct
    );
    out
}

/// The newest generation built in `gen`.
fn newest_generation(gen: &StoreGeneration) -> Result<Generation, Error> {
    if gen.clustered.is_some() {
        Ok(Generation::Clustered)
    } else if gen.cs_parse_order.is_some() {
        Ok(Generation::CsParseOrder)
    } else if gen.baseline.is_some() {
        Ok(Generation::Baseline)
    } else {
        Err(Error::State(
            "no storage built; load data and call self_organize()".into(),
        ))
    }
}

fn storage_for(gen: &StoreGeneration, generation: Generation) -> Result<StorageRef<'_>, Error> {
    match generation {
        Generation::Baseline => {
            gen.baseline
                .as_deref()
                .map(StorageRef::Baseline)
                .ok_or(Error::State(
                    "baseline not built; call build_baseline()".into(),
                ))
        }
        Generation::CsParseOrder => gen
            .cs_parse_order
            .as_ref()
            .map(|(store, schema)| StorageRef::Clustered { store, schema })
            .ok_or(Error::State(
                "CS tables not built; call build_cs_tables()".into(),
            )),
        Generation::Clustered => match (&gen.clustered, &gen.schema) {
            (Some(store), Some(schema)) => Ok(StorageRef::Clustered { store, schema }),
            _ => Err(Error::State(
                "not self-organized; call self_organize()".into(),
            )),
        },
    }
}

/// A copy of `triples` sorted in SPO order (the order schema discovery and
/// the store builders require).
fn sorted_spo(triples: &[Triple]) -> Vec<Triple> {
    let mut v = triples.to_vec();
    v.sort_unstable_by_key(|t| t.key_spo());
    v
}

fn drift_stats_locked(st: &State) -> DriftStats {
    let n_base_irregular = match (&st.gen.clustered, &st.gen.cs_parse_order) {
        (Some(store), _) => store.irregular.len() as u64,
        (None, Some((store, _))) => store.irregular.len() as u64,
        _ => 0,
    };
    let view = st.delta.current_view();
    let (matched, pending, fill) = match &st.write {
        Some(w) => (
            w.pending_class.len() as u64,
            w.pending_props.len() as u64,
            w.per_class_fill.clone(),
        ),
        None => (0, 0, Vec::new()),
    };
    DriftStats {
        n_base_triples: st.gen.triples.len() as u64,
        n_base_irregular,
        n_delta_inserts: view.map_or(0, |v| v.n_inserts() as u64),
        n_tombstones: st.delta.n_tombstones() as u64,
        matched_subjects: matched,
        unmatched_subjects: pending.saturating_sub(matched),
        per_class_fill: fill,
    }
}

/// Decode one encoded triple back to terms.
fn decode_triple(dict: &Dictionary, t: Triple) -> Result<TermTriple, Error> {
    Ok(TermTriple::new(
        dict.decode(t.s)?,
        dict.decode(t.p)?,
        dict.decode(t.o)?,
    ))
}

/// Decode encoded triples back to terms for WAL logging; `None` when the
/// database is not durable (skips the decode entirely).
fn decode_for_log(st: &State, triples: &[Triple]) -> Result<Option<Vec<TermTriple>>, Error> {
    if st.durable.is_none() {
        return Ok(None);
    }
    let dict = st.gen.dict.as_ref();
    let mut out = Vec::with_capacity(triples.len());
    for &t in triples {
        out.push(decode_triple(dict, t)?);
    }
    Ok(Some(out))
}

/// Append one write batch to the WAL *before* it is applied in-memory,
/// honoring the sync policy (under [`SyncPolicy::Always`] the return IS the
/// durability acknowledgment). No-op on non-durable databases. On failure
/// the write is rejected and durability is disabled for the rest of the
/// process: the record may or may not have reached the log, so continuing
/// to log around it could silently diverge the log from the applied state —
/// the caller sees the error, the in-memory store stays usable, and the
/// on-disk state remains a consistent (possibly stale) prefix.
fn log_write(st: &mut State, record: &WalRecord) -> Result<(), Error> {
    let Some(d) = st.durable.as_mut() else {
        return Ok(());
    };
    let seq = d.seq + 1;
    match d
        .wal
        .append(seq, record)
        .and_then(|_| d.wal.maybe_sync(d.policy))
    {
        Ok(()) => {
            d.seq = seq;
            Ok(())
        }
        Err(e) => {
            st.durable = None;
            Err(Error::Io(e))
        }
    }
}

/// Write a full checkpoint of the current state (see
/// [`Database::checkpoint`]): snapshot = the *visible* triples (base minus
/// tombstones plus delta inserts) decoded to terms, `base_seq` = the
/// current log sequence; then a fresh WAL and an atomic manifest commit.
/// A failure at any step leaves the previous snapshot + WAL pair live and
/// consistent — the error is returned, durability stays enabled.
fn checkpoint_locked(st: &mut State) -> Result<(), Error> {
    let triples = {
        let Some(_) = st.durable.as_ref() else {
            return Ok(());
        };
        let dict = st.gen.dict.as_ref();
        let view = st.delta.current_view();
        let mut out = Vec::with_capacity(st.gen.triples.len() + view.map_or(0, |v| v.n_inserts()));
        for &t in st.gen.triples.iter() {
            if view.is_some_and(|v| v.is_deleted(t)) {
                continue;
            }
            out.push(decode_triple(dict, t)?);
        }
        for t in st.delta.visible_inserts() {
            out.push(decode_triple(dict, t)?);
        }
        out
    };
    let mut flags = LayoutFlags {
        baseline: st.gen.baseline.is_some(),
        cs_parse_order: st.gen.cs_parse_order.is_some(),
        clustered: st.gen.clustered.is_some(),
        schema: st.gen.schema.is_some(),
        plain_encoding: false,
    };
    flags.record_encoding(st.gen.encoding);
    // sordf-lint: allow(L3) — the durable-handle check above returned early.
    let d = st.durable.as_mut().unwrap();
    let snap_n = d.snap_file + 1;
    let wal_n = d.wal_file + 1;
    let snap = StoreSnapshot {
        base_seq: d.seq,
        flags,
        schema_cfg: st.schema_cfg.clone(),
        triples,
    };
    snap.write_to(&Manifest::snap_path(&d.dir, snap_n))?;
    let wal = WalWriter::create_with(&Manifest::wal_path(&d.dir, wal_n), d.wal.format())?;
    crash_point!("checkpoint.pre_manifest");
    let m = Manifest {
        snap_file: snap_n,
        wal_file: wal_n,
        base_seq: d.seq,
    };
    m.commit(&d.dir)?;
    crash_point!("checkpoint.post_manifest");
    d.wal = wal;
    d.snap_file = snap_n;
    d.wal_file = wal_n;
    m.remove_orphans(&d.dir)?;
    Ok(())
}

/// Pending delta writes make a *partial* rebuild unsound (the new store
/// would disagree with the surviving ones about the visible data); the
/// rebuild entry points refuse instead.
fn ensure_no_pending_writes(st: &State, what: &str) -> Result<(), Error> {
    if st.delta.is_empty() {
        Ok(())
    } else {
        Err(Error::State(format!(
            "{what} with pending writes: call reorganize_now() (or maybe_reorganize) first"
        )))
    }
}

/// Fold pending delta writes into the base triple set and reset the write
/// state. Callers that keep built generations alive must rebuild them
/// afterwards. Returns whether anything changed.
fn collapse_delta_into_base(st: &mut State) -> bool {
    if st.delta.is_empty() {
        st.write = None;
        return false;
    }
    let st = &mut *st;
    let gen = Arc::make_mut(&mut st.gen);
    let triples = Arc::make_mut(&mut gen.triples);
    if let Some(view) = st.delta.current_view() {
        if view.n_tombstones() > 0 {
            triples.retain(|t| !view.is_deleted(*t));
        }
    }
    triples.extend(st.delta.visible_inserts());
    st.delta = DeltaStore::new();
    st.write = None;
    st.epoch += 1; // base content changed: any pinned rebuild is stale
    true
}

/// Intern a write batch into the current generation's dictionary. The
/// dictionary interns through `&self` (append-only pools behind short
/// internal writer locks, lock-free reads), so a pin held anywhere — even
/// on the writing thread itself — can never block or deadlock a writer:
/// the pools grow in place and pinned readers simply observe the appended
/// entries, while every OID they already resolved stays put. Returns the
/// closure's output plus whether string literals now extend past the
/// sorted prefix (the pushdown-disabling watermark check).
fn intern_batch<T>(
    st: &mut State,
    f: impl FnOnce(&Dictionary) -> Result<T, Error>,
) -> Result<(T, bool), Error> {
    let dict = st.gen.dict.as_ref();
    let out = f(dict)?;
    let sa = st.gen.clustered.is_some() && dict.n_strings() > st.gen.strings_sorted_len;
    Ok((out, sa))
}

/// Stage `triples` into the base set: collapse pending writes, append, and
/// invalidate built stores (the next build sees everything).
fn load_terms_locked(st: &mut State, triples: &[TermTriple]) -> Result<usize, Error> {
    collapse_delta_into_base(st);
    let (encoded, _) = intern_batch(st, |dict| {
        let mut enc = Vec::with_capacity(triples.len());
        for t in triples {
            enc.push(encode_triple_skolemized(dict, t)?);
        }
        Ok(enc)
    })?;
    // Log after the encode proves the batch well-formed (so recovery can
    // never trip over a record the live path rejected) but before any
    // visible mutation. The collapse above is logically invisible.
    if st.durable.is_some() {
        log_write(st, &WalRecord::Load(triples.to_vec()))?;
    }
    let gen = Arc::make_mut(&mut st.gen);
    Arc::make_mut(&mut gen.triples).extend(encoded);
    gen.baseline = None;
    gen.schema = None;
    gen.cs_parse_order = None;
    gen.clustered = None;
    gen.reorg_report = None;
    st.write = None;
    st.epoch += 1;
    Ok(triples.len())
}

/// Tombstone already-encoded triples that are currently visible.
fn delete_encoded_locked(st: &mut State, targets: Vec<Triple>) -> Result<usize, Error> {
    if targets.is_empty() {
        return Ok(0);
    }
    if !st.gen.any_built() {
        // Staging mode: remove from the base set directly.
        if let Some(terms) = decode_for_log(st, &targets)? {
            log_write(st, &WalRecord::Delete(terms))?;
        }
        let set: FxHashSet<Triple> = targets.into_iter().collect();
        let gen = Arc::make_mut(&mut st.gen);
        let triples = Arc::make_mut(&mut gen.triples);
        let before = triples.len();
        triples.retain(|t| !set.contains(t));
        st.epoch += 1;
        return Ok(before - triples.len());
    }
    let visible: Vec<Triple> = {
        let view = st.delta.current_view();
        // One pass over the base against a targets-sized set (not the
        // other way round — the base can be large, the batch is small).
        let target_set: FxHashSet<Triple> = targets.iter().copied().collect();
        let mut in_base: FxHashSet<Triple> = FxHashSet::default();
        for t in st.gen.triples.iter() {
            if target_set.contains(t) {
                in_base.insert(*t);
            }
        }
        targets
            .into_iter()
            .filter(|&t| match view {
                None => in_base.contains(&t),
                Some(d) => {
                    (in_base.contains(&t) && !d.is_deleted(t))
                        || d.insert_pairs_for(t.p, Some((t.s.raw(), t.s.raw())))
                            .any(|(_, o)| o == t.o)
                }
            })
            .collect()
    };
    if visible.is_empty() {
        return Ok(0);
    }
    // Log the *resolved* visible triples: replay from the same state
    // re-resolves to exactly this set, and zero-match deletes (skipped
    // above) never consume a log sequence — keeping the log and the delta
    // advancing in lockstep.
    if let Some(terms) = decode_for_log(st, &visible)? {
        log_write(st, &WalRecord::Delete(terms))?;
    }
    let n = visible.len();
    let _ = st.delta.delete(&visible);
    Ok(n)
}

/// Route one insert batch's subjects through the incremental assigner
/// (drift bookkeeping only — queries read delta triples through the merged
/// scans regardless of routing). Shared by the live write path and the
/// catch-up fold of a generation swap (which replays against the *new*
/// schema).
fn route_inserts(
    write: &mut Option<WriteState>,
    schema: Option<&EmergentSchema>,
    cfg: &SchemaConfig,
    encoded: &[Triple],
) {
    let Some(schema) = schema else { return };
    let w = write.get_or_insert_with(|| WriteState {
        assigner: IncrementalAssigner::new(schema),
        pending_props: FxHashMap::default(),
        pending_class: FxHashMap::default(),
        per_class_fill: vec![0; schema.classes.len()],
    });
    let mut by_subject: FxHashMap<Oid, (Vec<Oid>, u64)> = FxHashMap::default();
    for t in encoded {
        let e = by_subject.entry(t.s).or_default();
        e.0.push(t.p);
        e.1 += 1;
    }
    for (s, (mut props, n)) in by_subject {
        if let Some(cid) = schema.class_of(s) {
            // Known subject: its delta triples will cluster back into
            // its class at the next reorganization.
            w.per_class_fill[cid.0 as usize] += n;
            continue;
        }
        props.sort_unstable();
        props.dedup();
        let merged: Vec<Oid> = match w.pending_props.get_mut(&s) {
            Some(prev) => {
                prev.extend(props);
                prev.sort_unstable();
                prev.dedup();
                prev.clone()
            }
            None => {
                w.pending_props.insert(s, props.clone());
                props
            }
        };
        match w.assigner.route(&merged, cfg) {
            Some(cid) => {
                w.pending_class.insert(s, cid);
                w.per_class_fill[cid.0 as usize] += n;
            }
            None => {
                w.pending_class.remove(&s);
            }
        }
    }
}

fn discover_schema_locked(st: &mut State, cfg: &SchemaConfig) -> Result<f64, Error> {
    if st.gen.clustered.is_some() {
        return Err(Error::State(
            "schema already frozen by self_organize()".into(),
        ));
    }
    ensure_no_pending_writes(st, "discover_schema()")?;
    let spo = sorted_spo(&st.gen.triples);
    let schema = sordf_schema::discover(&spo, &st.gen.dict, cfg);
    let coverage = schema.coverage;
    Arc::make_mut(&mut st.gen).schema = Some(Arc::new(schema));
    st.schema_cfg = cfg.clone();
    st.epoch += 1;
    Ok(coverage)
}

fn build_cs_tables_locked(st: &mut State, dm: &Arc<DiskManager>) -> Result<(), Error> {
    if st.gen.cs_parse_order.is_some() {
        return Ok(());
    }
    ensure_no_pending_writes(st, "build_cs_tables()")?;
    if st.gen.schema.is_none() {
        let cfg = st.schema_cfg.clone();
        discover_schema_locked(st, &cfg)?;
    }
    // sordf-lint: allow(L3) — discover_schema_locked just populated the schema.
    let mut schema = st.gen.schema.as_deref().unwrap().clone();
    let spo = sorted_spo(&st.gen.triples);
    let spec = ClusterSpec::auto(&schema);
    let store = build_clustered_with(dm, &spo, &mut schema, &spec, false, st.encoding);
    let gen = Arc::make_mut(&mut st.gen);
    gen.cs_parse_order = Some((Arc::new(store), Arc::new(schema)));
    gen.encoding = st.encoding;
    st.epoch += 1;
    Ok(())
}

fn self_organize_locked(
    st: &mut State,
    dm: &Arc<DiskManager>,
    spec: Option<ClusterSpec>,
) -> Result<Arc<EmergentSchema>, Error> {
    if st.gen.clustered.is_some() {
        // sordf-lint: allow(L3) — a clustered generation always carries the schema it was built from.
        return Ok(st.gen.schema.clone().unwrap());
    }
    if collapse_delta_into_base(st) {
        // Pending writes changed the dataset: schema/generations
        // discovered before them are stale.
        let gen = Arc::make_mut(&mut st.gen);
        gen.baseline = None;
        gen.cs_parse_order = None;
        gen.schema = None;
    }
    if st.gen.schema.is_none() {
        let cfg = st.schema_cfg.clone();
        discover_schema_locked(st, &cfg)?;
    }
    // sordf-lint: allow(L3) — ensured Some by the discover_schema_locked call above.
    let spec = spec.unwrap_or_else(|| ClusterSpec::auto(st.gen.schema.as_deref().unwrap()));
    // Build a *fresh* generation: clone the dictionary + triples, cluster
    // the clone, and install it. In-flight queries pinned to the old
    // generation keep a consistent (dict, store) pair — the old dictionary
    // is never renumbered in place.
    let mut ts = TripleSet {
        dict: st.gen.dict.as_ref().clone(),
        triples: st.gen.triples.as_ref().clone(),
    };
    // sordf-lint: allow(L3) — ensured Some by the discover_schema_locked call above.
    let mut schema = st.gen.schema.as_deref().unwrap().clone();
    let report = reorganize(&mut ts, &mut schema, &spec);
    let spo = ts.sorted_spo();
    let store = build_clustered_with(dm, &spo, &mut schema, &spec, true, st.encoding);
    // The string pool was just sorted: OID order equals value order for
    // everything interned so far.
    let strings_sorted_len = ts.dict.n_strings();
    let schema = Arc::new(schema);
    st.gen = Arc::new(StoreGeneration {
        dict: Arc::new(ts.dict),
        triples: Arc::new(ts.triples),
        // Parse-order generations hold stale OIDs now.
        baseline: None,
        cs_parse_order: None,
        schema: Some(Arc::clone(&schema)),
        clustered: Some(Arc::new(store)),
        spec,
        reorg_report: Some(report),
        strings_sorted_len,
        encoding: st.encoding,
    });
    #[cfg(debug_assertions)]
    st.gen.debug_validate();
    st.epoch += 1;
    Ok(schema)
}

// ---- the background rebuild + swap protocol --------------------------------

/// Everything a rebuild works from, captured under one state lock: the
/// pinned generation, the delta view at the pin, and the epoch that must
/// still hold at swap time.
#[must_use = "a RebuildPin claims the single rebuild slot; dropping it without finish/release leaks the claim"]
struct RebuildPin {
    gen: GenerationHandle,
    view: Option<Arc<DeltaView>>,
    pin_seq: u64,
    epoch: u64,
    schema_cfg: SchemaConfig,
    /// Durable bookkeeping captured at the pin (`None` on non-durable
    /// databases): the directory and the log sequence the pinned fold
    /// covers. The rebuild serializes its output as a snapshot *off-lock*
    /// (to `snap.tmp` — the final numbered name is only known at swap
    /// time) so the swap itself stays O(catch-up).
    durable: Option<DurablePin>,
    /// The scheme the rebuild's layouts are encoded with ([`State::encoding`]
    /// at pin time — so a `set_encoding` + reorg re-encodes the store).
    encoding: ColumnEncoding,
}

/// See [`RebuildPin::durable`].
#[must_use]
struct DurablePin {
    dir: PathBuf,
    /// Log sequence at the pin: the pre-swap snapshot folds exactly the
    /// writes up to it, and the rotated WAL carries exactly the records
    /// after it.
    pin_log_seq: u64,
}

/// The staging name a rebuild's pre-swap snapshot is written under.
const SNAP_TMP: &str = "snap.tmp";

/// The output of a rebuild, before the swap wraps it into a published
/// [`StoreGeneration`] (the dictionary stays unwrapped so the catch-up fold
/// can intern into it without locking).
struct BuiltGeneration {
    ts: TripleSet,
    baseline: Option<BaselineStore>,
    schema: Option<Arc<EmergentSchema>>,
    cs_parse_order: Option<(ClusteredStore, Arc<EmergentSchema>)>,
    clustered: Option<ClusteredStore>,
    spec: ClusterSpec,
    report: Option<ReorgReport>,
    strings_sorted_len: usize,
    encoding: ColumnEncoding,
}

/// Claim the (single) rebuild slot and pin the rebuild's input.
// lock-order: acquires(db_state)
fn begin_rebuild(inner: &DbInner) -> Result<RebuildPin, Error> {
    let mut st = inner.state.lock();
    if !st.gen.any_built() {
        return Err(Error::State(
            "no storage built; load data and call self_organize()".into(),
        ));
    }
    if st.rebuild.is_some() {
        return Err(Error::State("a reorganization is already in flight".into()));
    }
    st.rebuild = Some(st.epoch);
    Ok(RebuildPin {
        gen: Arc::clone(&st.gen),
        view: st.delta.current_view_arc(),
        pin_seq: st.delta.seq(),
        epoch: st.epoch,
        schema_cfg: st.schema_cfg.clone(),
        durable: st.durable.as_ref().map(|d| DurablePin {
            dir: d.dir.clone(),
            pin_log_seq: d.seq,
        }),
        encoding: st.encoding,
    })
}

/// Release a rebuild claim without swapping (build error / panic path).
// lock-order: acquires(db_state)
fn release_rebuild_claim(inner: &DbInner, epoch: u64) {
    let mut st = inner.state.lock();
    if st.rebuild == Some(epoch) {
        st.rebuild = None;
    }
}

/// The heavy lifting, entirely off-lock: fold the pinned delta into an
/// owned triple set and rebuild every generation the pinned one had. This
/// is what runs for the full rebuild duration while readers and writers
/// proceed against the live store.
fn build_generation(dm: &Arc<DiskManager>, pin: &RebuildPin) -> BuiltGeneration {
    let mut ts = pin.gen.fold_into_triple_set(pin.view.as_deref());
    let mut out = BuiltGeneration {
        ts: TripleSet::new(),
        baseline: None,
        schema: None,
        cs_parse_order: None,
        clustered: None,
        spec: ClusterSpec::none(),
        report: None,
        strings_sorted_len: pin.gen.strings_sorted_len,
        encoding: pin.encoding,
    };
    let mut frozen: Option<Arc<EmergentSchema>> = None;
    // One SPO copy serves every builder; clustering renumbers the OIDs, so
    // it is the only step after which the copy must be re-derived.
    let mut spo = ts.sorted_spo();
    if pin.gen.clustered.is_some() {
        let mut schema = sordf_schema::discover(&spo, &ts.dict, &pin.schema_cfg);
        let spec = ClusterSpec::auto(&schema);
        let report = reorganize(&mut ts, &mut schema, &spec);
        spo = ts.sorted_spo();
        let store = build_clustered_with(dm, &spo, &mut schema, &spec, true, pin.encoding);
        out.strings_sorted_len = ts.dict.n_strings();
        out.clustered = Some(store);
        out.spec = spec;
        out.report = Some(report);
        frozen = Some(Arc::new(schema));
    }
    if pin.gen.cs_parse_order.is_some() {
        // Under a frozen (fresh) schema when clustered, else re-discovered
        // from the merged data — mirrors `build_cs_tables` after the
        // clustering collapse.
        let base = match &frozen {
            Some(s) => Arc::clone(s),
            None => Arc::new(sordf_schema::discover(&spo, &ts.dict, &pin.schema_cfg)),
        };
        let mut schema = (*base).clone();
        let spec = ClusterSpec::auto(&schema);
        let store = build_clustered_with(dm, &spo, &mut schema, &spec, false, pin.encoding);
        out.cs_parse_order = Some((store, Arc::new(schema)));
        frozen.get_or_insert(base);
    }
    if pin.gen.baseline.is_some() {
        out.baseline = Some(BaselineStore::build_with(dm, &spo, pin.encoding));
    }
    out.schema = frozen;
    out.ts = ts;
    out
}

/// Decode `triples` under a dictionary into term triples.
fn decode_triples(dict: &Dictionary, triples: &[Triple]) -> Result<Vec<TermTriple>, Error> {
    let mut out = Vec::with_capacity(triples.len());
    for &t in triples {
        out.push(decode_triple(dict, t)?);
    }
    Ok(out)
}

/// Encode term triples under the new (renumbered) dictionary, interning
/// terms first seen during the rebuild.
fn encode_terms(new_dict: &Dictionary, terms: &[TermTriple]) -> Result<Vec<Triple>, Error> {
    let mut out = Vec::with_capacity(terms.len());
    for t in terms {
        out.push(encode_triple_skolemized(new_dict, t)?);
    }
    Ok(out)
}

/// Serialize the built generation as the pre-swap checkpoint snapshot,
/// off-lock, under the staging name [`SNAP_TMP`] (the swap renames it to
/// its final number under the state lock, where the number is decided).
fn write_rebuild_snapshot(
    dp: &DurablePin,
    pin: &RebuildPin,
    built: &BuiltGeneration,
) -> Result<(), Error> {
    let triples = decode_triples(&built.ts.dict, &built.ts.triples)?;
    let mut flags = LayoutFlags {
        baseline: built.baseline.is_some(),
        cs_parse_order: built.cs_parse_order.is_some(),
        clustered: built.clustered.is_some(),
        schema: built.schema.is_some(),
        plain_encoding: false,
    };
    flags.record_encoding(built.encoding);
    let snap = StoreSnapshot {
        base_seq: dp.pin_log_seq,
        flags,
        schema_cfg: pin.schema_cfg.clone(),
        triples,
    };
    snap.write_to(&dp.dir.join(SNAP_TMP))?;
    Ok(())
}

/// The durable half of the swap, under the state lock: rename the
/// pre-written snapshot to its final number, rotate the WAL down to
/// exactly the catch-up records, and commit the manifest atomically. A
/// failure at any step leaves the previous snapshot + WAL pair live and
/// mutually consistent (the caller then abandons the swap).
fn commit_swap_durable(
    dp: &DurablePin,
    d: &mut DurableState,
    records: &[WalRecord],
) -> io::Result<()> {
    let snap_n = d.snap_file + 1;
    let wal_n = d.wal_file + 1;
    fs::rename(dp.dir.join(SNAP_TMP), Manifest::snap_path(&d.dir, snap_n))?;
    let mut wal = WalWriter::create_with(&Manifest::wal_path(&d.dir, wal_n), d.wal.format())?;
    let mut seq = dp.pin_log_seq;
    for rec in records {
        seq += 1;
        wal.append(seq, rec)?;
    }
    wal.sync()?;
    crash_point!("swap.pre_manifest");
    let m = Manifest {
        snap_file: snap_n,
        wal_file: wal_n,
        base_seq: dp.pin_log_seq,
    };
    m.commit(&d.dir)?;
    crash_point!("swap.post_manifest");
    debug_assert_eq!(
        d.seq, seq,
        "catch-up records must cover every logged write since the pin"
    );
    d.wal = wal;
    d.snap_file = snap_n;
    d.wal_file = wal_n;
    d.seq = seq;
    m.remove_orphans(&d.dir)?;
    Ok(())
}

/// The swap: install the built generation, folding every write that
/// arrived during the rebuild into the fresh delta store. This is the only
/// moment writers wait on a reorganization — O(catch-up writes), not
/// O(rebuild). Returns `false` when the rebuild was superseded (a bulk
/// load / explicit build invalidated the pinned epoch).
// lock-order: acquires(db_state, dict)
fn finish_rebuild(inner: &DbInner, pin: RebuildPin, built: BuiltGeneration) -> Result<bool, Error> {
    let mut st = inner.state.lock();
    if st.rebuild == Some(pin.epoch) {
        st.rebuild = None;
    }
    if st.epoch != pin.epoch {
        if let Some(dp) = &pin.durable {
            // Best-effort: the orphaned staging snapshot is simply
            // overwritten by the next rebuild.
            let _ = fs::remove_file(dp.dir.join(SNAP_TMP));
        }
        return Ok(false);
    }
    let st = &mut *st;
    let catch_up = st.delta.writes_since(pin.pin_seq);
    let new_dict = built.ts.dict;
    let mut new_delta = DeltaStore::with_base_seq(pin.pin_seq);
    let mut new_write: Option<WriteState> = None;
    // Re-serialize the catch-up writes (term-level) for the rotated WAL.
    // Skipped when durability lapsed mid-rebuild (a failed log append
    // disables it) — the disk then keeps its last consistent state.
    let durable_live = pin.durable.is_some() && st.durable.is_some();
    let mut catch_up_records: Vec<WalRecord> = Vec::new();
    {
        // Decode under the *current* generation's dictionary — it is the
        // same append-only dictionary the rebuild pinned (grown in place by
        // concurrent interns) and is guaranteed to contain every term
        // interned during the rebuild. No locking: decode is lock-free.
        let old_dict = st.gen.dict.as_ref();
        for (seq, w) in catch_up {
            let applied = match w {
                DeltaWrite::Insert(triples) => {
                    let terms = decode_triples(old_dict, &triples)?;
                    let enc = encode_terms(&new_dict, &terms)?;
                    if durable_live {
                        catch_up_records.push(WalRecord::Insert(terms));
                    }
                    route_inserts(
                        &mut new_write,
                        built.schema.as_deref(),
                        &st.schema_cfg,
                        &enc,
                    );
                    new_delta.insert_run(enc)
                }
                DeltaWrite::Delete(triples) => {
                    let terms = decode_triples(old_dict, &triples)?;
                    let enc = encode_terms(&new_dict, &terms)?;
                    if durable_live {
                        catch_up_records.push(WalRecord::Delete(terms));
                    }
                    new_delta.delete(&enc)
                }
            };
            debug_assert_eq!(
                applied.seq(),
                seq,
                "catch-up replay must preserve sequencing"
            );
        }
    }
    if built.clustered.is_some() && new_dict.n_strings() > built.strings_sorted_len {
        // Catch-up inserts interned strings past the freshly sorted pool.
        new_delta.set_strings_appended();
    }
    if durable_live {
        // Durable commit before the in-memory install: on failure the swap
        // is abandoned wholesale — old generation, old snapshot + WAL pair,
        // everything stays live and mutually consistent.
        // sordf-lint: allow(L3) — durable_live checked both sides above.
        let dp = pin.durable.as_ref().unwrap();
        // sordf-lint: allow(L3) — durable_live checked both sides above.
        let d = st.durable.as_mut().unwrap();
        commit_swap_durable(dp, d, &catch_up_records)?;
    }
    st.gen = Arc::new(StoreGeneration {
        dict: Arc::new(new_dict),
        triples: Arc::new(built.ts.triples),
        baseline: built.baseline.map(Arc::new),
        schema: built.schema,
        cs_parse_order: built.cs_parse_order.map(|(s, sc)| (Arc::new(s), sc)),
        clustered: built.clustered.map(Arc::new),
        spec: built.spec,
        reorg_report: built.report,
        strings_sorted_len: built.strings_sorted_len,
        encoding: built.encoding,
    });
    st.delta = new_delta;
    st.write = new_write;
    #[cfg(debug_assertions)]
    {
        st.gen.debug_validate();
        st.delta.debug_validate();
    }
    st.epoch += 1;
    Ok(true)
}

/// One full rebuild: build off-lock, then swap. Shared by the synchronous
/// entry points (which run it inline) and the background worker.
fn run_rebuild(
    inner: &DbInner,
    pin: RebuildPin,
    reason: Option<String>,
    drift_before: DriftStats,
) -> Result<ReorgOutcome, Error> {
    let built = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        build_generation(&inner.dm, &pin)
    })) {
        Ok(b) => b,
        Err(payload) => {
            release_rebuild_claim(inner, pin.epoch);
            return Err(Error::Exec(panic_message(payload)));
        }
    };
    // Serialize the pre-swap checkpoint while still off-lock, so the swap
    // itself stays O(catch-up) — never O(data).
    if let Some(dp) = &pin.durable {
        if let Err(e) = write_rebuild_snapshot(dp, &pin, &built) {
            release_rebuild_claim(inner, pin.epoch);
            return Err(e);
        }
    }
    let irregular_ratio_after = built
        .clustered
        .as_ref()
        .map(|store| store.irregular.len() as f64 / store.n_triples().max(1) as f64);
    let report = built.report.clone();
    let epoch = pin.epoch;
    match finish_rebuild(inner, pin, built) {
        Ok(true) => Ok(ReorgOutcome {
            fired: true,
            swapped: true,
            reason,
            drift_before,
            irregular_ratio_after,
            report,
        }),
        Ok(false) => Ok(ReorgOutcome {
            fired: true,
            swapped: false,
            reason,
            drift_before,
            irregular_ratio_after: None,
            report: None,
        }),
        Err(e) => {
            release_rebuild_claim(inner, epoch);
            Err(e)
        }
    }
}

/// Spawn `run_rebuild` on a worker thread.
fn spawn_rebuild(
    inner: &Arc<DbInner>,
    pin: RebuildPin,
    reason: Option<String>,
    drift_before: DriftStats,
) -> BackgroundReorg {
    let inner = Arc::clone(inner);
    let thread = thread::Builder::new()
        .name("sordf-reorg".into())
        .spawn(move || run_rebuild(&inner, pin, reason, drift_before))
        // sordf-lint: allow(L3) — thread spawn fails only on resource exhaustion; a reorg that cannot start is fatal by design.
        .expect("spawn reorg thread");
    BackgroundReorg { thread }
}

/// Handle on an in-flight background reorganization (see
/// [`Database::reorganize_async`]). The swap completes whether or not the
/// handle is waited on; the handle is how callers observe the outcome and
/// sequence tests deterministically.
#[must_use = "the swap completes regardless, but dropping the handle discards the outcome (including build errors)"]
pub struct BackgroundReorg {
    thread: thread::JoinHandle<Result<ReorgOutcome, Error>>,
}

impl BackgroundReorg {
    /// Has the rebuild (including its swap) finished?
    pub fn is_finished(&self) -> bool {
        self.thread.is_finished()
    }

    /// Block until the rebuild + swap complete and return the outcome.
    pub fn wait(self) -> Result<ReorgOutcome, Error> {
        match self.thread.join() {
            Ok(outcome) => outcome,
            Err(payload) => Err(Error::Exec(panic_message(payload))),
        }
    }
}

/// The auto-reorganization thread: a stop flag + condvar (so stops are
/// immediate, not sleep-bounded) and the join handle.
struct AutoReorg {
    stop: Arc<(StdMutex<bool>, Condvar)>,
    thread: thread::JoinHandle<()>,
}

/// Encode a term for lookup without interning, skolemizing blank nodes the
/// way `TripleSet::add` does (shared scheme: [`Term::skolem_blank_iri`]).
fn term_oid_skolemized(dict: &Dictionary, t: &Term) -> Option<Oid> {
    match t {
        Term::Blank(label) => dict.iri_oid(&Term::skolem_blank_iri(label)),
        other => dict.term_oid(other),
    }
}

/// Render a panic payload as a message (best effort).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "engine panicked".to_string()
    }
}

/// Classify a payload caught at the query boundary: a cancellation/deadline
/// interrupt (see [`sordf_engine::cancel`]) maps to its typed error; any
/// other panic is a genuine engine fault and stays a stringly `Exec`.
fn interrupt_or_exec(payload: Box<dyn std::any::Any + Send>) -> Error {
    match sordf_engine::cancel::interrupted(payload.as_ref()) {
        Some(StopReason::Cancelled) => Error::Cancelled,
        Some(StopReason::TimedOut) => Error::Timeout,
        None => Error::Exec(panic_message(payload)),
    }
}

/// Repackage a traced [`QueryResponse`] into the legacy [`Traced`] shape
/// (the deprecated `query_traced*` wrappers return it).
fn traced_of(resp: QueryResponse) -> Traced {
    Traced {
        results: resp.results,
        // sordf-lint: allow(L3) — infallible: every caller sets traced(true),
        // which guarantees both fields are populated.
        stats: resp.stats.expect("traced request always carries stats"),
        // sordf-lint: allow(L3) — infallible: see above.
        pool: resp.pool.expect("traced request always carries pool stats"),
    }
}

/// Compile-time thread-safety audit: one `Database` serves concurrent
/// queries *and writes* from many threads (shared pool, per-query pins),
/// and the background-reorg machinery crosses threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    const fn assert_send<T: Send>() {}
    assert_send_sync::<Database>();
    assert_send_sync::<StoreGeneration>();
    assert_send::<BackgroundReorg>();
    assert_send::<Error>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use sordf_model::Term;

    fn sample_triples() -> Vec<TermTriple> {
        let mut triples = Vec::new();
        for i in 0..50u64 {
            let s = format!("http://ex/item{i}");
            triples.push(TermTriple::new(
                Term::iri(s.clone()),
                Term::iri("http://ex/qty"),
                Term::int((i % 10) as i64),
            ));
            triples.push(TermTriple::new(
                Term::iri(s),
                Term::iri("http://ex/sold"),
                Term::date(&format!("1996-01-{:02}", (i % 28) + 1)),
            ));
        }
        triples
    }

    fn sample_db() -> Database {
        let db = Database::in_temp_dir().unwrap();
        db.load_terms(&sample_triples()).unwrap();
        db
    }

    #[test]
    fn lifecycle_and_query() {
        let db = sample_db();
        db.build_baseline().unwrap();
        let rs = db
            .execute(
                &QueryRequest::sparql(
                    "SELECT ?s ?q WHERE { ?s <http://ex/qty> ?q . FILTER(?q = 3) }",
                )
                .generation(Generation::Baseline)
                .config(ExecConfig {
                    scheme: PlanScheme::Default,
                    zonemaps: false,
                    ..Default::default()
                }),
            )
            .unwrap()
            .results;
        assert_eq!(rs.len(), 5);

        db.self_organize().unwrap();
        let rs2 = db
            .query("SELECT ?s ?q WHERE { ?s <http://ex/qty> ?q . FILTER(?q = 3) }")
            .unwrap();
        assert_eq!(rs2.len(), 5);
        assert!(db.schema().unwrap().coverage > 0.99);
        assert!(db.reorg_report().is_some());
    }

    #[test]
    fn cold_vs_hot_pool_stats() {
        let db = sample_db();
        db.self_organize().unwrap();
        let q = "SELECT ?s WHERE { ?s <http://ex/qty> ?q . FILTER(?q < 5) }";
        db.drop_cache();
        let req = QueryRequest::sparql(q)
            .generation(Generation::Clustered)
            .traced(true);
        let cold = db.execute(&req).unwrap();
        let hot = db.execute(&req).unwrap();
        assert!(cold.pool.unwrap().misses > 0, "cold run must read pages");
        assert_eq!(hot.pool.unwrap().misses, 0, "hot run must be fully cached");
        assert_eq!(cold.results.len(), hot.results.len());
    }

    #[test]
    fn execute_maps_tripped_tokens_to_typed_errors() {
        let db = sample_db();
        db.self_organize().unwrap();
        let q = "SELECT ?s ?q WHERE { ?s <http://ex/qty> ?q . }";
        // An already-expired deadline fails before any execution work.
        let err = db
            .execute(&QueryRequest::sparql(q).timeout(Duration::ZERO))
            .unwrap_err();
        assert!(matches!(err, Error::Timeout), "{err}");
        assert_eq!(err.code(), "timeout");
        // Explicit cancellation wins, even with an expired deadline attached.
        let token = CancellationToken::new();
        token.cancel();
        let err = db
            .execute(
                &QueryRequest::sparql(q)
                    .cancel(token)
                    .timeout(Duration::ZERO),
            )
            .unwrap_err();
        assert!(matches!(err, Error::Cancelled), "{err}");
        assert_eq!(err.code(), "cancelled");
        // An untripped token leaves the query unharmed, and tracing works
        // through the same entry point.
        let resp = db
            .execute(
                &QueryRequest::sparql(q)
                    .cancel(CancellationToken::new())
                    .timeout(Duration::from_secs(3600))
                    .traced(true),
            )
            .unwrap();
        assert_eq!(resp.results.len(), 50);
        assert!(resp.stats.unwrap().rows_scanned >= 50);
    }

    #[test]
    fn query_before_build_errors() {
        let db = Database::in_temp_dir().unwrap();
        assert!(matches!(
            db.query("SELECT ?s WHERE { ?s <http://x/p> ?o . }"),
            Err(Error::State(_))
        ));
    }

    #[test]
    fn ddl_rendering() {
        let db = sample_db();
        db.self_organize().unwrap();
        let ddl = db.ddl().unwrap();
        assert!(ddl.contains("CREATE TABLE"), "{ddl}");
        assert!(ddl.contains("qty"), "{ddl}");
    }

    #[test]
    fn plan_cache_hits_shapes_and_swap_invalidation() {
        let db = sample_db();
        db.self_organize().unwrap();
        let q = "SELECT ?s ?q WHERE { ?s <http://ex/qty> ?q . FILTER(?q = 3) }";
        let s0 = db.plan_cache_stats();
        db.query(q).unwrap();
        db.query(q).unwrap();
        let s1 = db.plan_cache_stats();
        assert_eq!(s1.misses - s0.misses, 1, "first run optimizes");
        assert!(s1.hits > s0.hits, "second run is a cache hit");
        assert!(s1.entries >= 1);

        // Same shape, different constant: constants are abstracted out of
        // the cache key, so this reuses the cached plan.
        db.query("SELECT ?s ?q WHERE { ?s <http://ex/qty> ?q . FILTER(?q = 7) }")
            .unwrap();
        let s2 = db.plan_cache_stats();
        assert_eq!(s2.misses, s1.misses, "same shape never re-optimizes");
        assert!(s2.hits > s1.hits);

        // A delta write does NOT invalidate (cached plans stay correct,
        // possibly stale-optimal)...
        db.insert_ntriples(
            r#"<http://ex/itemX> <http://ex/qty> "3"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://ex/itemX> <http://ex/sold> "1996-03-01"^^<http://www.w3.org/2001/XMLSchema#date> ."#,
        )
        .unwrap();
        db.query(q).unwrap();
        let s3 = db.plan_cache_stats();
        assert_eq!(s3.invalidations, s2.invalidations);
        assert!(s3.hits > s2.hits);

        // ...but a background generation swap bumps the epoch and the next
        // lookup clears the cache and re-optimizes.
        let outcome = db.reorganize_async().unwrap().wait().unwrap();
        assert!(outcome.swapped, "nothing raced, the swap must land");
        db.query(q).unwrap();
        let s4 = db.plan_cache_stats();
        assert_eq!(
            s4.invalidations,
            s3.invalidations + 1,
            "swap invalidates the plan cache"
        );
        assert_eq!(s4.misses, s3.misses + 1, "post-swap run re-optimizes");
        assert_eq!(db.query(q).unwrap().len(), 6, "3 old + new itemX");
    }

    #[test]
    fn plan_cache_key_includes_encoding() {
        let db = sample_db();
        db.self_organize().unwrap();
        assert_eq!(
            db.encoding(),
            ColumnEncoding::Compressed,
            "compression is the default build scheme"
        );

        // The key itself must differ by scheme. A generation swap already
        // clears the cache through the epoch; keying on the encoding is the
        // belt-and-braces guarantee that a plan costed against one page
        // encoding is never served to a store built under another.
        let q = "SELECT ?s ?q WHERE { ?s <http://ex/qty> ?q }";
        let dict = db.dict();
        let query = sordf_sparql::parse_sparql(q, &dict).unwrap();
        let compressed = plan_cache_key(
            &query,
            Generation::Clustered,
            ExecConfig::default(),
            ColumnEncoding::Compressed,
        );
        let plain = plan_cache_key(
            &query,
            Generation::Clustered,
            ExecConfig::default(),
            ColumnEncoding::Plain,
        );
        assert_ne!(compressed, plain, "encoding is part of the plan identity");
        drop(dict);

        // End to end: rebuilding under the plain scheme re-optimizes the
        // same query shape instead of reusing the compressed-era plan.
        db.query(q).unwrap();
        db.query(q).unwrap();
        let s1 = db.plan_cache_stats();
        db.set_encoding(ColumnEncoding::Plain);
        db.reorganize_now().unwrap();
        assert_eq!(
            db.encoding(),
            ColumnEncoding::Plain,
            "rebuild adopts the scheme"
        );
        let rows = db.query(q).unwrap().len();
        let s2 = db.plan_cache_stats();
        assert_eq!(s2.misses, s1.misses + 1, "plain rebuild re-optimizes");
        assert_eq!(db.query(q).unwrap().len(), rows, "cached plan agrees");
    }

    #[test]
    fn memory_stats_accounts_components() {
        let db = sample_db();
        // String literals so the front-coded dictionary run is non-trivial.
        let labels: Vec<TermTriple> = (0..50u64)
            .map(|i| {
                TermTriple::new(
                    Term::iri(format!("http://ex/item{i}")),
                    Term::iri("http://ex/label"),
                    Term::str(format!("common-prefix-label-{i:04}")),
                )
            })
            .collect();
        db.load_terms(&labels).unwrap();
        let staged = db.memory_stats();
        assert!(staged.dict_bytes > 0, "staged dictionary accounted");
        assert!(staged.base_triples_bytes > 0, "base triples accounted");
        assert_eq!(staged.column_bytes, 0, "nothing built yet");
        assert_eq!(staged.column_compression_ratio(), 1.0);

        db.self_organize().unwrap();
        let built = db.memory_stats();
        assert!(built.column_bytes > 0, "clustered segments accounted");
        assert!(
            built.column_plain_bytes >= built.column_bytes,
            "encoded pages never exceed their plain counterfactual"
        );
        assert_eq!(
            built.classes.iter().map(|c| c.encoded).sum::<u64>(),
            built.column_bytes,
            "classes partition the column bytes"
        );
        let clustered = built.classes[2];
        assert_eq!(clustered.name, "clustered");
        assert!(clustered.encoded > 0 && clustered.ratio() >= 1.0);
        assert_eq!(built.classes[0].encoded, 0, "no baseline built here");
        assert!(
            built.dict_string_bytes > 0 && built.dict_string_bytes < built.dict_string_plain_bytes,
            "front-coded strings accounted and smaller than plain"
        );
        assert!(built.bytes_per_triple() > 0.0);
        assert_eq!(built.n_triples as usize, db.n_triples());
        assert_eq!(built.delta_bytes, 0, "no pending writes");

        db.insert_ntriples(
            r#"<http://ex/new1> <http://ex/qty> "3"^^<http://www.w3.org/2001/XMLSchema#integer> ."#,
        )
        .unwrap();
        let m = db.memory_stats();
        assert!(m.delta_bytes > 0, "pending writes accounted");
        assert_eq!(m.n_triples as usize, db.n_triples());
        assert_eq!(
            m.total_bytes(),
            m.dict_bytes + m.base_triples_bytes + m.column_bytes + m.delta_bytes
        );
    }

    #[test]
    fn insert_delete_after_organize() {
        let db = sample_db();
        db.self_organize().unwrap();
        let q = "SELECT ?s ?q WHERE { ?s <http://ex/qty> ?q . FILTER(?q = 3) }";
        assert_eq!(db.query(q).unwrap().len(), 5);

        // Insert two more subjects with qty 3 (one schema-conforming with
        // both class properties, one qty-only).
        db.insert_ntriples(
            r#"<http://ex/new1> <http://ex/qty> "3"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://ex/new1> <http://ex/sold> "1996-02-01"^^<http://www.w3.org/2001/XMLSchema#date> .
<http://ex/new2> <http://ex/qty> "3"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://ex/new2> <http://ex/color> <http://ex/red> .
<http://ex/new2> <http://ex/shape> <http://ex/round> .
<http://ex/new2> <http://ex/size> <http://ex/big> ."#,
        )
        .unwrap();
        assert_eq!(
            db.query(q).unwrap().len(),
            7,
            "inserts visible without rebuild"
        );

        // Delete one of the original qty=3 triples.
        let victim = TermTriple::new(
            Term::iri("http://ex/item3"),
            Term::iri("http://ex/qty"),
            Term::int(3),
        );
        assert_eq!(db.delete_triples(std::slice::from_ref(&victim)).unwrap(), 1);
        assert_eq!(
            db.query(q).unwrap().len(),
            6,
            "tombstone filters the base value"
        );
        // Deleting again is a no-op (already invisible).
        assert_eq!(db.delete_triples(std::slice::from_ref(&victim)).unwrap(), 0);

        // Parallel execution sees the identical merged store.
        let par = db
            .execute(&QueryRequest::sparql(q).parallel(ParallelConfig {
                workers: 2,
                min_morsel_pages: 1,
                min_morsel_rows: 1,
            }))
            .unwrap()
            .results;
        assert_eq!(
            par.canonical(&db.dict()),
            db.query(q).unwrap().canonical(&db.dict())
        );

        let drift = db.drift_stats();
        assert_eq!(drift.n_delta_inserts, 6);
        assert_eq!(drift.n_tombstones, 1);
        assert_eq!(
            drift.matched_subjects, 1,
            "new1 has the class's property set"
        );
        assert_eq!(
            drift.unmatched_subjects, 1,
            "new2's property set fits no class"
        );
    }

    #[test]
    fn snapshots_pin_write_history() {
        let db = sample_db();
        db.self_organize().unwrap();
        let q = "SELECT ?s ?q WHERE { ?s <http://ex/qty> ?q . FILTER(?q = 3) }";
        let snap0 = db.snapshot();
        db.insert_ntriples(
            r#"<http://ex/new1> <http://ex/qty> "3"^^<http://www.w3.org/2001/XMLSchema#integer> ."#,
        )
        .unwrap();
        let snap1 = db.snapshot();
        db.delete_matching(None, Some(&Term::iri("http://ex/qty")), Some(&Term::int(3)))
            .unwrap();
        assert_eq!(db.query(q).unwrap().len(), 0, "all qty=3 deleted");
        assert_eq!(
            db.query_snapshot(q, snap1).unwrap().len(),
            6,
            "pre-delete snapshot"
        );
        assert_eq!(
            db.query_snapshot(q, snap0).unwrap().len(),
            5,
            "pre-insert snapshot"
        );
        // Current snapshot equals the live query.
        assert_eq!(db.query_snapshot(q, db.snapshot()).unwrap().len(), 0);
    }

    #[test]
    fn maybe_reorganize_collapses_delta() {
        let db = sample_db();
        db.self_organize().unwrap();
        let q = "SELECT ?s ?q WHERE { ?s <http://ex/qty> ?q . FILTER(?q = 3) }";
        db.insert_ntriples(
            r#"<http://ex/new1> <http://ex/qty> "3"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://ex/new1> <http://ex/sold> "1996-02-01"^^<http://www.w3.org/2001/XMLSchema#date> ."#,
        )
        .unwrap();
        db.delete_matching(Some(&Term::iri("http://ex/item3")), None, None)
            .unwrap();
        let before = db.query(q).unwrap().canonical(&db.dict());
        let n_before = db.n_triples();

        // A lenient policy does not fire on two writes.
        let calm = db.maybe_reorganize(&ReorgPolicy::default()).unwrap();
        assert!(!calm.fired);

        let outcome = db.maybe_reorganize(&ReorgPolicy::eager()).unwrap();
        assert!(outcome.fired, "eager policy fires on any pending write");
        assert!(
            outcome.swapped,
            "nothing raced: the fresh generation swapped in"
        );
        assert!(outcome.report.is_some());
        assert_eq!(
            outcome.irregular_ratio_after,
            Some(0.0),
            "delta fully clustered in"
        );
        assert_eq!(db.n_triples(), n_before, "logical content unchanged");
        assert_eq!(db.drift_stats().n_delta_inserts, 0, "delta collapsed");
        assert_eq!(
            db.query(q).unwrap().canonical(&db.dict()),
            before,
            "results preserved"
        );
        // The new subject now lives in a class segment.
        let s = db.dict().iri_oid("http://ex/new1").unwrap();
        assert!(db.schema().unwrap().class_of(s).is_some());
        // Nothing pending: eager policy has nothing to do.
        assert!(!db.maybe_reorganize(&ReorgPolicy::eager()).unwrap().fired);
    }

    #[test]
    fn string_inserts_disable_oid_order_pushdown() {
        let db = Database::in_temp_dir().unwrap();
        let mut triples = Vec::new();
        for (i, label) in ["apple", "banana", "cherry", "damson"].iter().enumerate() {
            let s = format!("http://ex/thing{i}");
            triples.push(TermTriple::new(
                Term::iri(s.clone()),
                Term::iri("http://ex/label"),
                Term::str(*label),
            ));
            triples.push(TermTriple::new(
                Term::iri(s),
                Term::iri("http://ex/rank"),
                Term::int(i as i64),
            ));
        }
        db.load_terms(&triples).unwrap();
        db.self_organize().unwrap();
        let q = r#"SELECT ?s WHERE { ?s <http://ex/label> ?l . FILTER(?l < "banana") }"#;
        assert_eq!(db.query(q).unwrap().len(), 1, "only apple");
        // "azure" sorts between apple and banana but its OID is appended at
        // the end of the pool: an OID-range pushdown would miss it.
        db.insert_ntriples(
            r#"<http://ex/thing9> <http://ex/label> "azure" .
<http://ex/thing9> <http://ex/rank> "9"^^<http://www.w3.org/2001/XMLSchema#integer> ."#,
        )
        .unwrap();
        assert_eq!(db.query(q).unwrap().len(), 2, "apple and azure");
        // After reorganization the pool is re-sorted and pushdown is safe again.
        db.reorganize_now().unwrap();
        assert_eq!(db.query(q).unwrap().len(), 2);
    }

    #[test]
    fn rebuilds_with_pending_writes_are_refused() {
        let db = sample_db();
        db.build_baseline().unwrap();
        db.insert_ntriples(
            r#"<http://ex/new1> <http://ex/qty> "3"^^<http://www.w3.org/2001/XMLSchema#integer> ."#,
        )
        .unwrap();
        assert!(matches!(
            db.discover_schema(&SchemaConfig::default()),
            Err(Error::State(_))
        ));
        assert!(matches!(db.build_cs_tables(), Err(Error::State(_))));
        // self_organize collapses the pending writes instead of refusing.
        db.self_organize().unwrap();
        let rs = db
            .query("SELECT ?s ?q WHERE { ?s <http://ex/qty> ?q . FILTER(?q = 3) }")
            .unwrap();
        assert_eq!(rs.len(), 6);
    }

    #[test]
    fn reorganize_rebuilds_every_live_generation() {
        let db = sample_db();
        db.self_organize().unwrap();
        db.build_cs_tables().unwrap();
        db.build_baseline().unwrap();
        let q = "SELECT ?s ?q WHERE { ?s <http://ex/qty> ?q . FILTER(?q = 3) }";
        db.insert_ntriples(
            r#"<http://ex/new1> <http://ex/qty> "3"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://ex/new1> <http://ex/sold> "1996-02-01"^^<http://www.w3.org/2001/XMLSchema#date> ."#,
        )
        .unwrap();
        db.reorganize_now().unwrap();
        for generation in [
            Generation::Baseline,
            Generation::CsParseOrder,
            Generation::Clustered,
        ] {
            let rs = db
                .execute(&QueryRequest::sparql(q).generation(generation))
                .unwrap()
                .results;
            assert_eq!(rs.len(), 6, "{generation:?} must survive the reorg");
        }
    }

    #[test]
    fn baseline_generation_supports_writes() {
        let db = sample_db();
        db.build_baseline().unwrap();
        let q = "SELECT ?s ?q WHERE { ?s <http://ex/qty> ?q . FILTER(?q = 3) }";
        assert_eq!(db.query(q).unwrap().len(), 5);
        db.insert_ntriples(
            r#"<http://ex/new1> <http://ex/qty> "3"^^<http://www.w3.org/2001/XMLSchema#integer> ."#,
        )
        .unwrap();
        db.delete_matching(Some(&Term::iri("http://ex/item3")), None, None)
            .unwrap();
        assert_eq!(db.query(q).unwrap().len(), 5, "one in, one out");
        db.reorganize_now().unwrap();
        assert_eq!(db.query(q).unwrap().len(), 5, "rebuilt baseline agrees");
        assert!(
            db.clustered_store().is_none(),
            "reorg does not force organization"
        );
    }

    #[test]
    fn doc_example_compiles_and_runs() {
        // Mirror of the crate-level doc example.
        let db = Database::in_temp_dir().unwrap();
        db.load_ntriples(
            r#"<http://ex/book1> <http://ex/has_author> <http://ex/author1> .
<http://ex/book1> <http://ex/in_year> "1996"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://ex/book1> <http://ex/isbn_no> "1-56619-909-3" ."#,
        )
        .unwrap();
        db.self_organize().unwrap();
        let rs = db
            .query(
                "SELECT ?a ?n WHERE { ?b <http://ex/has_author> ?a . ?b <http://ex/isbn_no> ?n . }",
            )
            .unwrap();
        assert_eq!(rs.len(), 1);
    }

    // ---- background reorganization -----------------------------------------

    #[test]
    fn async_reorg_swaps_and_preserves_answers() {
        let db = sample_db();
        db.self_organize().unwrap();
        let q = "SELECT ?s ?q WHERE { ?s <http://ex/qty> ?q . FILTER(?q = 3) }";
        db.insert_ntriples(
            r#"<http://ex/new1> <http://ex/qty> "3"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://ex/new1> <http://ex/sold> "1996-02-01"^^<http://www.w3.org/2001/XMLSchema#date> ."#,
        )
        .unwrap();
        let before = db.query(q).unwrap().canonical(&db.dict());
        let handle = db.reorganize_async().unwrap();
        // Queries keep answering while the rebuild runs (pinned generation).
        assert_eq!(db.query(q).unwrap().canonical(&db.dict()), before);
        let outcome = handle.wait().unwrap();
        assert!(outcome.fired && outcome.swapped);
        assert_eq!(outcome.irregular_ratio_after, Some(0.0));
        assert_eq!(
            db.drift_stats().n_delta_inserts,
            0,
            "delta folded into the base"
        );
        assert_eq!(db.query(q).unwrap().canonical(&db.dict()), before);
        assert!(!db.reorg_in_flight());
        // Policy-gated async: nothing pending, nothing to do.
        assert!(db
            .maybe_reorganize_async(&ReorgPolicy::eager())
            .unwrap()
            .is_none());
    }

    /// The heart of the swap protocol, deterministically: pin + build, let
    /// writes land *mid-rebuild*, then swap — the catch-up writes must be
    /// folded into the fresh delta (re-encoded under the renumbered
    /// dictionary) and stay visible, snapshots taken mid-rebuild included.
    #[test]
    fn catch_up_writes_fold_across_swap() {
        let db = sample_db();
        // Add a second class with a sorted string column, so the swap's
        // string-pool handling is observable.
        let mut labelled = Vec::new();
        for (i, label) in ["apple", "banana", "cherry", "damson"].iter().enumerate() {
            let s = format!("http://ex/thing{i}");
            labelled.push(TermTriple::new(
                Term::iri(s.clone()),
                Term::iri("http://ex/label"),
                Term::str(*label),
            ));
            labelled.push(TermTriple::new(
                Term::iri(s),
                Term::iri("http://ex/rank"),
                Term::int(i as i64),
            ));
        }
        db.load_terms(&labelled).unwrap();
        db.self_organize().unwrap();
        let q = "SELECT ?s ?q WHERE { ?s <http://ex/qty> ?q . FILTER(?q = 3) }";
        let lq = r#"SELECT ?s WHERE { ?s <http://ex/label> ?l . FILTER(?l < "banana") }"#;
        assert_eq!(
            db.query(lq).unwrap().len(),
            1,
            "only apple before any write"
        );
        db.insert_ntriples(
            r#"<http://ex/pre1> <http://ex/qty> "3"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://ex/pre1> <http://ex/sold> "1996-02-02"^^<http://www.w3.org/2001/XMLSchema#date> ."#,
        )
        .unwrap();

        // Pin and build — but do not swap yet.
        let pin = begin_rebuild(&db.inner).unwrap();
        let built = build_generation(&db.inner.dm, &pin);

        // Writes that arrive *during* the rebuild: an insert with a fresh
        // string literal (interned only in the old dictionary), a
        // conforming insert, and a delete of a base triple.
        db.insert_ntriples(
            r#"<http://ex/mid1> <http://ex/qty> "3"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://ex/mid1> <http://ex/sold> "1996-02-03"^^<http://www.w3.org/2001/XMLSchema#date> .
<http://ex/thing9> <http://ex/label> "azure" .
<http://ex/thing9> <http://ex/rank> "9"^^<http://www.w3.org/2001/XMLSchema#integer> ."#,
        )
        .unwrap();
        db.delete_matching(Some(&Term::iri("http://ex/item3")), None, None)
            .unwrap();
        let mid_snap = db.snapshot();
        let want = db.query(q).unwrap().canonical(&db.dict());

        // Swap: catch-up fold must decode under the old dict, re-encode
        // under the new one and replay in order.
        assert!(finish_rebuild(&db.inner, pin, built).unwrap());

        assert_eq!(
            db.query(q).unwrap().canonical(&db.dict()),
            want,
            "post-swap sees catch-up"
        );
        let drift = db.drift_stats();
        assert_eq!(
            drift.n_delta_inserts, 4,
            "mid-rebuild inserts pending in the fresh delta"
        );
        assert_eq!(
            drift.n_tombstones, 2,
            "item3's two triples replayed as tombstones"
        );
        assert_eq!(
            drift.matched_subjects, 2,
            "mid1 + thing9 routed against the *new* schema"
        );
        // "azure" was interned during the rebuild: string order pushdown
        // must be disabled until the next reorg, so the filter still sees it.
        assert_eq!(db.query(lq).unwrap().len(), 2, "apple and azure");
        // The mid-rebuild snapshot survives the swap (sequence preserved).
        assert_eq!(
            db.query_snapshot(q, mid_snap)
                .unwrap()
                .canonical(&db.dict()),
            want
        );
        // The pre-swap generation's data fully folded: one more reorg
        // clusters the catch-up writes in and changes nothing.
        db.reorganize_now().unwrap();
        assert_eq!(db.query(q).unwrap().canonical(&db.dict()), want);
        assert_eq!(db.query(lq).unwrap().len(), 2);
        assert_eq!(db.drift_stats().n_delta_inserts, 0);
    }

    /// Regression: a class sub-ordered by a date column must not sort-key
    /// narrow (or zone-map prune) on that column's *base* values while the
    /// delta holds inserts for the predicate — a pending insert can fill a
    /// NULL (or out-of-range) base value, and narrowing would silently drop
    /// the row's exception bindings.
    #[test]
    fn delta_fill_survives_sort_key_narrowing() {
        let db = Database::in_temp_dir().unwrap();
        let mut triples = Vec::new();
        for i in 0..40u64 {
            let s = format!("http://ex/item{i}");
            triples.push(TermTriple::new(
                Term::iri(s.clone()),
                Term::iri("http://ex/qty"),
                Term::int(i as i64),
            ));
            // item39 misses its date: a NULL in the (sorted) date column.
            if i < 39 {
                triples.push(TermTriple::new(
                    Term::iri(s),
                    Term::iri("http://ex/sold"),
                    Term::date(&format!("1996-01-{:02}", (i % 28) + 1)),
                ));
            }
        }
        db.load_terms(&triples).unwrap();
        db.self_organize().unwrap();
        // Fill the NULL through the delta with an in-range date.
        db.insert_ntriples(
            r#"<http://ex/item39> <http://ex/sold> "1996-01-05"^^<http://www.w3.org/2001/XMLSchema#date> ."#,
        )
        .unwrap();
        let q = r#"SELECT ?s ?d WHERE { ?s <http://ex/qty> ?q . ?s <http://ex/sold> ?d .
            FILTER(?d <= "1996-01-10"^^<http://www.w3.org/2001/XMLSchema#date>) }"#;
        let reference = db
            .execute(
                &QueryRequest::sparql(q)
                    .generation(Generation::Clustered)
                    .config(ExecConfig {
                        scheme: PlanScheme::Default,
                        zonemaps: true,
                        ..Default::default()
                    }),
            )
            .unwrap()
            .results
            .canonical(&db.dict());
        for zonemaps in [true, false] {
            let exec = ExecConfig {
                scheme: PlanScheme::RdfScanJoin,
                zonemaps,
                ..Default::default()
            };
            let got = db
                .execute(
                    &QueryRequest::sparql(q)
                        .generation(Generation::Clustered)
                        .config(exec),
                )
                .unwrap()
                .results
                .canonical(&db.dict());
            assert_eq!(got, reference, "zonemaps={zonemaps}");
            assert!(
                got.iter().any(|row| row.contains("item39")),
                "delta-filled row must not be narrowed away (zonemaps={zonemaps})"
            );
        }
        // The morsel-parallel path shares the prepared scan.
        let par = db
            .execute(&QueryRequest::sparql(q).parallel(ParallelConfig {
                workers: 2,
                min_morsel_pages: 1,
                min_morsel_rows: 1,
            }))
            .unwrap()
            .results;
        assert_eq!(par.canonical(&db.dict()), reference);
    }

    #[test]
    fn superseded_rebuild_is_abandoned() {
        let db = sample_db();
        db.self_organize().unwrap();
        let pin = begin_rebuild(&db.inner).unwrap();
        let built = build_generation(&db.inner.dm, &pin);
        // A bulk load invalidates the pinned epoch: the swap must refuse.
        db.load_ntriples(
            r#"<http://ex/late> <http://ex/qty> "3"^^<http://www.w3.org/2001/XMLSchema#integer> ."#,
        )
        .unwrap();
        assert!(
            !finish_rebuild(&db.inner, pin, built).unwrap(),
            "superseded"
        );
        assert!(!db.reorg_in_flight());
        db.self_organize().unwrap();
        let rs = db
            .query("SELECT ?s ?q WHERE { ?s <http://ex/qty> ?q . FILTER(?q = 3) }")
            .unwrap();
        assert_eq!(rs.len(), 6, "the load won; the stale rebuild left no trace");
    }

    /// Regression (review finding): holding a `DictPin` across a write on
    /// the *same thread* must not deadlock — the dictionary interns through
    /// `&self`, so the pools grow in place under an open pin. The pin
    /// observes the appended terms (its generation's dictionary is append-
    /// only), and a generation swap never waits on it.
    #[test]
    fn dict_pin_held_across_writes_does_not_deadlock() {
        let db = sample_db();
        db.self_organize().unwrap();
        let pin = db.dict();
        let n_before = pin.n_iris();
        let item3 = pin.iri_oid("http://ex/item3").unwrap();
        // sordf-lint: allow(L1) — this regression test deliberately holds the pin
        // across writes to assert the wait-free interning contract.
        db.insert_ntriples(
            r#"<http://ex/new1> <http://ex/qty> "3"^^<http://www.w3.org/2001/XMLSchema#integer> ."#,
        )
        .unwrap();
        // sordf-lint: allow(L1) — deliberate: same wait-free-interning regression check.
        db.delete_matching(Some(&Term::iri("http://ex/item3")), None, None)
            .unwrap();
        // sordf-lint: allow(L1) — deliberate: same wait-free-interning regression check.
        db.load_ntriples(
            r#"<http://ex/new2> <http://ex/qty> "4"^^<http://www.w3.org/2001/XMLSchema#integer> ."#,
        )
        .unwrap();
        // The generation's dictionary grew in place: the open pin sees the
        // appended terms, and every OID it already resolved stayed put.
        assert_eq!(pin.n_iris(), n_before + 2);
        assert!(pin.iri_oid("http://ex/new1").is_some());
        assert_eq!(pin.iri_oid("http://ex/item3"), Some(item3));
        drop(pin);
        let fresh = db.dict();
        // sordf-lint: allow(L1) — deliberate: reorganizing while `fresh` is held
        // asserts the swap never waits on an existing pin.
        db.self_organize().unwrap();
        // The swap installed a renumbered dictionary; `fresh` kept its
        // pre-swap snapshot alive and consistent.
        assert!(fresh.iri_oid("http://ex/new2").is_some());
        let q = "SELECT ?s ?q WHERE { ?s <http://ex/qty> ?q . FILTER(?q = 3) }";
        // 5 originals − item3 (deleted) + new1 (inserted) = 5.
        assert_eq!(db.query(q).unwrap().len(), 5, "writes all landed");
    }

    #[test]
    fn only_one_rebuild_at_a_time() {
        let db = sample_db();
        db.self_organize().unwrap();
        let pin = begin_rebuild(&db.inner).unwrap();
        assert!(db.reorg_in_flight());
        assert!(matches!(db.reorganize_async(), Err(Error::State(_))));
        assert!(matches!(db.reorganize_now(), Err(Error::State(_))));
        let built = build_generation(&db.inner.dm, &pin);
        assert!(finish_rebuild(&db.inner, pin, built).unwrap());
        assert!(!db.reorg_in_flight());
        db.reorganize_now().unwrap();
    }

    #[test]
    fn auto_reorg_thread_starts_fires_and_stops() {
        let mut db = sample_db();
        db.self_organize().unwrap();
        db.insert_ntriples(
            r#"<http://ex/new1> <http://ex/qty> "3"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://ex/new1> <http://ex/sold> "1996-02-04"^^<http://www.w3.org/2001/XMLSchema#date> ."#,
        )
        .unwrap();
        let q = "SELECT ?s ?q WHERE { ?s <http://ex/qty> ?q . FILTER(?q = 3) }";
        let want = db.query(q).unwrap().canonical(&db.dict());
        db.start_auto_reorg(ReorgPolicy::eager(), Duration::from_millis(1))
            .unwrap();
        assert!(db.auto_reorg_running());
        assert!(matches!(
            db.start_auto_reorg(ReorgPolicy::eager(), Duration::from_millis(1)),
            Err(Error::State(_))
        ));
        // The eager policy must fire and fold the delta within the timeout.
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while db.drift_stats().n_delta_inserts > 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "auto reorg never fired"
            );
            thread::sleep(Duration::from_millis(2));
        }
        db.stop_auto_reorg();
        assert!(!db.auto_reorg_running());
        db.stop_auto_reorg(); // idempotent
        assert_eq!(db.query(q).unwrap().canonical(&db.dict()), want);
    }

    // ---- durability ---------------------------------------------------------

    fn durable_dir(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        // ordering: Relaxed — unique temp names only.
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("sordf-core-{tag}-{}-{n}", std::process::id()))
    }

    struct Cleanup(PathBuf);
    impl Drop for Cleanup {
        fn drop(&mut self) {
            // sordf-lint: allow(L7) — best-effort temp cleanup in a test.
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    const DQ: &str = "SELECT ?s ?q WHERE { ?s <http://ex/qty> ?q . FILTER(?q = 3) }";

    #[test]
    fn durable_writes_survive_reopen() {
        let dir = durable_dir("reopen");
        let _c = Cleanup(dir.clone());
        let want = {
            let db = Database::create_durable(&dir, SyncPolicy::Always).unwrap();
            assert!(db.is_durable());
            db.load_terms(&sample_triples()).unwrap();
            db.self_organize().unwrap();
            db.insert_ntriples(
                r#"<http://ex/new1> <http://ex/qty> "3"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://ex/new1> <http://ex/sold> "1996-02-01"^^<http://www.w3.org/2001/XMLSchema#date> ."#,
            )
            .unwrap();
            let victim = TermTriple::new(
                Term::iri("http://ex/item3"),
                Term::iri("http://ex/qty"),
                Term::int(3),
            );
            assert_eq!(db.delete_triples(std::slice::from_ref(&victim)).unwrap(), 1);
            db.query(DQ).unwrap().canonical(&db.dict())
        };
        // Re-open from disk: the checkpoint restores the organized base and
        // the WAL suffix replays the insert and the delete.
        let db = Database::open(&dir).unwrap();
        assert!(db.is_durable());
        assert_eq!(db.query(DQ).unwrap().canonical(&db.dict()), want);
        // The recovered database accepts (and logs) further writes.
        db.insert_ntriples(
            r#"<http://ex/new2> <http://ex/qty> "3"^^<http://www.w3.org/2001/XMLSchema#integer> ."#,
        )
        .unwrap();
        assert_eq!(db.query(DQ).unwrap().len(), want.len() + 1);
    }

    #[test]
    fn checkpoint_rotates_the_wal_and_bounds_replay() {
        let dir = durable_dir("checkpoint");
        let _c = Cleanup(dir.clone());
        let want = {
            let db = Database::create_durable(&dir, SyncPolicy::Always).unwrap();
            db.load_terms(&sample_triples()).unwrap();
            db.build_baseline().unwrap();
            // build_baseline checkpointed: the pair rotated past (0, 0).
            let m = Manifest::read(&dir).unwrap().unwrap();
            assert!(m.snap_file >= 1 && m.wal_file >= 1);
            db.insert_ntriples(
                r#"<http://ex/new1> <http://ex/qty> "3"^^<http://www.w3.org/2001/XMLSchema#integer> ."#,
            )
            .unwrap();
            db.checkpoint().unwrap();
            let m2 = Manifest::read(&dir).unwrap().unwrap();
            assert_eq!(m2.snap_file, m.snap_file + 1);
            assert_eq!(m2.wal_file, m.wal_file + 1);
            // Post-checkpoint writes land in the fresh WAL.
            db.insert_ntriples(
                r#"<http://ex/new2> <http://ex/qty> "3"^^<http://www.w3.org/2001/XMLSchema#integer> ."#,
            )
            .unwrap();
            db.query(DQ).unwrap().canonical(&db.dict())
        };
        let db = Database::open(&dir).unwrap();
        assert_eq!(db.query(DQ).unwrap().canonical(&db.dict()), want);
    }

    #[test]
    fn background_swap_rotates_the_durable_pair() {
        let dir = durable_dir("swap");
        let _c = Cleanup(dir.clone());
        let want = {
            let db = Database::create_durable(&dir, SyncPolicy::Always).unwrap();
            db.load_terms(&sample_triples()).unwrap();
            db.self_organize().unwrap();
            let m = Manifest::read(&dir).unwrap().unwrap();
            db.insert_ntriples(
                r#"<http://ex/new1> <http://ex/qty> "3"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://ex/new1> <http://ex/sold> "1996-02-02"^^<http://www.w3.org/2001/XMLSchema#date> ."#,
            )
            .unwrap();
            db.reorganize_now().unwrap();
            // The swap committed a fresh snapshot + WAL pair.
            let m2 = Manifest::read(&dir).unwrap().unwrap();
            assert_eq!(m2.snap_file, m.snap_file + 1);
            assert_eq!(m2.wal_file, m.wal_file + 1);
            assert!(!dir.join(SNAP_TMP).exists(), "staging file renamed away");
            db.query(DQ).unwrap().canonical(&db.dict())
        };
        let db = Database::open(&dir).unwrap();
        assert_eq!(db.query(DQ).unwrap().canonical(&db.dict()), want);
        assert!(
            db.clustered_store().is_some(),
            "recovery rebuilt the organized layout"
        );
    }

    #[test]
    fn create_durable_refuses_an_existing_store() {
        let dir = durable_dir("refuse");
        let _c = Cleanup(dir.clone());
        drop(Database::create_durable(&dir, SyncPolicy::Always).unwrap());
        assert!(matches!(
            Database::create_durable(&dir, SyncPolicy::Always),
            Err(Error::State(_))
        ));
        // But open recovers it fine.
        Database::open(&dir).unwrap();
    }

    #[test]
    fn compact_delta_merges_runs_and_preserves_answers() {
        let db = sample_db();
        db.self_organize().unwrap();
        for i in 0..3 {
            db.insert_ntriples(&format!(
                r#"<http://ex/extra{i}> <http://ex/qty> "3"^^<http://www.w3.org/2001/XMLSchema#integer> ."#
            ))
            .unwrap();
        }
        db.delete_matching(Some(&Term::iri("http://ex/extra1")), None, None)
            .unwrap();
        assert_eq!(db.delta_runs(), 3);
        let before = db.query(DQ).unwrap().canonical(&db.dict());
        assert!(db.compact_delta().unwrap());
        assert_eq!(db.delta_runs(), 1, "runs merged");
        assert_eq!(db.query(DQ).unwrap().canonical(&db.dict()), before);
        // Idempotent: a single run with no pending work compacts to nothing.
        assert!(!db.compact_delta().unwrap());
    }
}
