//! # sordf — self-organizing structured RDF
//!
//! The facade crate of the workspace: a single [`Database`] type that walks
//! through the paper's whole lifecycle.
//!
//! ```
//! use sordf::{Database, ExecConfig, PlanScheme};
//!
//! let mut db = Database::in_temp_dir().unwrap();
//! db.load_ntriples(r#"
//!     <http://ex/book1> <http://ex/has_author> <http://ex/author1> .
//!     <http://ex/book1> <http://ex/in_year> "1996"^^<http://www.w3.org/2001/XMLSchema#integer> .
//!     <http://ex/book1> <http://ex/isbn_no> "1-56619-909-3" .
//!     <http://ex/book2> <http://ex/has_author> <http://ex/author2> .
//!     <http://ex/book2> <http://ex/in_year> "1997"^^<http://www.w3.org/2001/XMLSchema#integer> .
//!     <http://ex/book2> <http://ex/isbn_no> "1-56619-909-4" .
//!     <http://ex/book3> <http://ex/has_author> <http://ex/author1> .
//!     <http://ex/book3> <http://ex/in_year> "1998"^^<http://www.w3.org/2001/XMLSchema#integer> .
//!     <http://ex/book3> <http://ex/isbn_no> "1-56619-909-5" .
//! "#).unwrap();
//!
//! // Self-organize: discover the emergent schema, cluster subjects,
//! // rebuild storage as CS segments.
//! db.self_organize().unwrap();
//! assert_eq!(db.schema().unwrap().classes.len(), 1);
//!
//! let rs = db.query("SELECT ?a ?n WHERE { ?b <http://ex/has_author> ?a . \
//!                     ?b <http://ex/isbn_no> ?n . }").unwrap();
//! assert_eq!(rs.len(), 3);
//! ```
//!
//! The database keeps up to three physical generations, matching the axes of
//! the paper's Table I:
//!
//! 1. a **baseline** exhaustive-index store over parse-order OIDs,
//! 2. optional **CS tables in parse order** ([`Database::build_cs_tables`]),
//! 3. the **clustered** generation after [`Database::self_organize`]
//!    (subject-clustered OIDs, sorted literals, dense segments).
//!
//! Queries run against the newest built generation by default; benchmarks
//! pin a generation + plan scheme with [`Database::query_with`].
//!
//! The store stays organized **as data keeps arriving**: after
//! [`Database::self_organize`], [`Database::insert_ntriples`] and
//! [`Database::delete_matching`] write through an in-memory delta store
//! (sorted insert runs + tombstones, snapshot-sequenced — see
//! [`Database::snapshot`] / [`Database::query_snapshot`]) that every query
//! merges with the base generations, and
//! [`Database::maybe_reorganize`] re-runs discovery + clustering over the
//! merged data when a [`ReorgPolicy`] threshold fires — swapping a fresh
//! generation in behind the same query API.

use std::io;
use std::path::Path;
use std::sync::Arc;

use sordf_columnar::{BufferPool, DiskManager, PoolStats};
use sordf_engine::agg::ResultSet;
use sordf_engine::context::StatsSnapshot;
use sordf_engine::planner::PlanInfo;
pub use sordf_engine::{ExecConfig, ParallelConfig, PlanScheme};
use sordf_engine::{ExecContext, StorageRef};
use sordf_model::{ntriples, Dictionary, FxHashMap, FxHashSet, ModelError, Oid, Term, TermTriple, Triple};
pub use sordf_schema::{DriftStats, EmergentSchema, SchemaConfig};
use sordf_schema::{ClassId, IncrementalAssigner};
pub use sordf_storage::Snapshot;
use sordf_storage::{
    build_clustered, reorganize, BaselineStore, ClusterSpec, ClusteredStore, DeltaStore,
    DeltaView, ReorgReport, TripleSet,
};

/// Errors surfaced by the facade.
#[derive(Debug)]
pub enum Error {
    Io(io::Error),
    Model(ModelError),
    Sparql(sordf_sparql::ParseError),
    Sql(String),
    State(String),
    /// The execution engine failed mid-query (e.g. a page read kept failing
    /// after retries). The query is lost; the database stays usable.
    Exec(String),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Io(e) => write!(f, "io error: {e}"),
            Error::Model(e) => write!(f, "data error: {e}"),
            Error::Sparql(e) => write!(f, "{e}"),
            Error::Sql(e) => write!(f, "SQL error: {e}"),
            Error::State(e) => write!(f, "invalid state: {e}"),
            Error::Exec(e) => write!(f, "execution failed: {e}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Error {
        Error::Io(e)
    }
}

impl From<ModelError> for Error {
    fn from(e: ModelError) -> Error {
        Error::Model(e)
    }
}

impl From<sordf_sparql::ParseError> for Error {
    fn from(e: sordf_sparql::ParseError) -> Error {
        Error::Sparql(e)
    }
}

/// Which storage generation a query should run against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Generation {
    /// Exhaustive permutation indexes, parse-order OIDs.
    Baseline,
    /// CS tables with parse-order OIDs (sparse segments).
    CsParseOrder,
    /// Fully self-organized: clustered OIDs, dense segments.
    Clustered,
}

/// A query's result together with its execution trace.
pub struct Traced {
    pub results: ResultSet,
    pub stats: StatsSnapshot,
    pub pool: PoolStats,
}

/// Thresholds that drive adaptive reorganization ([`Database::maybe_reorganize`]).
/// The decision reads [`DriftStats`]: reorganize once enough writes have
/// accumulated **and** one of the drift ratios crossed its bound.
#[derive(Debug, Clone, Copy)]
pub struct ReorgPolicy {
    /// Minimum accumulated writes (inserts + tombstones) before a
    /// reorganization is even considered — reorganizing a near-empty delta
    /// is all cost, no locality.
    pub min_delta_triples: u64,
    /// Fire when (inserts + tombstones) / base exceeds this.
    pub max_delta_ratio: f64,
    /// Fire when the irregular-triple ratio (base irregular + unorganized
    /// delta, over all visible triples) exceeds this.
    pub max_irregular_ratio: f64,
    /// Fire when the fraction of delta subjects the incremental assigner
    /// could not route to any existing class exceeds this — the emergent
    /// schema itself has drifted and discovery must re-run.
    pub max_unmatched_ratio: f64,
}

impl Default for ReorgPolicy {
    fn default() -> ReorgPolicy {
        ReorgPolicy {
            min_delta_triples: 4096,
            max_delta_ratio: 0.10,
            max_irregular_ratio: 0.25,
            max_unmatched_ratio: 0.50,
        }
    }
}

impl ReorgPolicy {
    /// Fire on any pending write — tests and interactive use.
    pub fn eager() -> ReorgPolicy {
        ReorgPolicy {
            min_delta_triples: 1,
            max_delta_ratio: 0.0,
            max_irregular_ratio: 0.0,
            max_unmatched_ratio: 0.0,
        }
    }

    /// Why this policy fires on `drift`, or `None` to keep accumulating.
    pub fn trigger_reason(&self, drift: &DriftStats) -> Option<String> {
        let writes = drift.n_delta_inserts + drift.n_tombstones;
        if writes < self.min_delta_triples {
            return None;
        }
        if drift.delta_ratio() > self.max_delta_ratio {
            return Some(format!(
                "delta ratio {:.4} > {:.4}",
                drift.delta_ratio(),
                self.max_delta_ratio
            ));
        }
        if drift.irregular_ratio() > self.max_irregular_ratio {
            return Some(format!(
                "irregular ratio {:.4} > {:.4}",
                drift.irregular_ratio(),
                self.max_irregular_ratio
            ));
        }
        if drift.unmatched_subjects > 0 && drift.unmatched_ratio() > self.max_unmatched_ratio {
            return Some(format!(
                "unmatched subject ratio {:.4} > {:.4}",
                drift.unmatched_ratio(),
                self.max_unmatched_ratio
            ));
        }
        None
    }
}

/// What [`Database::maybe_reorganize`] decided and did.
#[derive(Debug, Clone)]
pub struct ReorgOutcome {
    /// Did a reorganization run?
    pub fired: bool,
    /// The policy threshold that fired, if any.
    pub reason: Option<String>,
    /// Drift at decision time.
    pub drift_before: DriftStats,
    /// Irregular-triple ratio of the fresh clustered generation (only when
    /// fired and the database is organized).
    pub irregular_ratio_after: Option<f64>,
    /// The clustering report of the fresh generation, if fired.
    pub report: Option<ReorgReport>,
}

/// Write-path bookkeeping between reorganizations: the incremental CS
/// assigner plus the routing decisions it made for delta-new subjects.
struct WriteState {
    assigner: IncrementalAssigner,
    /// Delta-new subjects (not in the base assignment): the union of their
    /// inserted property sets, sorted + deduplicated.
    pending_props: FxHashMap<Oid, Vec<Oid>>,
    /// Subjects the assigner routed to an existing class.
    pending_class: FxHashMap<Oid, ClassId>,
    /// Pending delta triples per class (base-assigned or routed subjects).
    per_class_fill: Vec<u64>,
}

/// The self-organizing RDF database.
pub struct Database {
    dm: Arc<DiskManager>,
    pool: BufferPool,
    ts: TripleSet,
    baseline: Option<BaselineStore>,
    schema: Option<EmergentSchema>,
    /// Sparse CS tables over parse-order OIDs (and the schema they use).
    cs_parse_order: Option<(ClusteredStore, EmergentSchema)>,
    clustered: Option<ClusteredStore>,
    /// Spec used for clustering (kept for reporting).
    spec: ClusterSpec,
    reorg_report: Option<ReorgReport>,
    config: ExecConfig,
    /// Pending writes since the last (re)build: insert runs + tombstones,
    /// snapshot-sequenced. Queries merge this with the base generations.
    delta: DeltaStore,
    /// Incremental CS routing state for the pending writes.
    write: Option<WriteState>,
    /// String-pool size at the last string sort (reorganization); interning
    /// past this watermark breaks string-OID value order until the next
    /// reorganization.
    strings_sorted_len: usize,
    /// The schema configuration of the last discovery — reused for
    /// incremental routing admissibility and for re-discovery during
    /// reorganization, so a custom config survives the lifecycle.
    schema_cfg: SchemaConfig,
}

impl Database {
    /// A database backed by a temp file (deleted on drop).
    pub fn in_temp_dir() -> Result<Database, Error> {
        Ok(Database::with_disk(Arc::new(DiskManager::temp()?)))
    }

    /// A database backed by the given file (truncated).
    pub fn create(path: &Path) -> Result<Database, Error> {
        Ok(Database::with_disk(Arc::new(DiskManager::create(path)?)))
    }

    fn with_disk(dm: Arc<DiskManager>) -> Database {
        let pool = BufferPool::new(Arc::clone(&dm), 4096); // 256 MiB cache
        Database {
            dm,
            pool,
            ts: TripleSet::new(),
            baseline: None,
            schema: None,
            cs_parse_order: None,
            clustered: None,
            spec: ClusterSpec::none(),
            reorg_report: None,
            config: ExecConfig::default(),
            delta: DeltaStore::new(),
            write: None,
            strings_sorted_len: 0,
            schema_cfg: SchemaConfig::default(),
        }
    }

    // ---- loading -----------------------------------------------------------

    /// Bulk-load an N-Triples document into the staging set. Collapses any
    /// pending delta writes into the base first, then invalidates built
    /// stores (the next build sees everything). For incremental writes after
    /// a build, use [`Database::insert_ntriples`].
    pub fn load_ntriples(&mut self, text: &str) -> Result<usize, Error> {
        self.collapse_delta_into_base();
        let n = self.ts.load_ntriples(text)?;
        self.invalidate();
        Ok(n)
    }

    /// Bulk-load term triples from a generator. Same semantics as
    /// [`Database::load_ntriples`].
    pub fn load_terms(&mut self, triples: &[TermTriple]) -> Result<usize, Error> {
        self.collapse_delta_into_base();
        let n = self.ts.extend_terms(triples)?;
        self.invalidate();
        Ok(n)
    }

    fn invalidate(&mut self) {
        self.baseline = None;
        self.schema = None;
        self.cs_parse_order = None;
        self.clustered = None;
        self.reorg_report = None;
        self.write = None;
    }

    fn any_generation_built(&self) -> bool {
        self.baseline.is_some() || self.cs_parse_order.is_some() || self.clustered.is_some()
    }

    /// Number of visible triples: base triples minus tombstoned ones, plus
    /// visible delta inserts.
    pub fn n_triples(&self) -> usize {
        match self.delta.current_view() {
            None => self.ts.len(),
            Some(view) => {
                let deleted_base = if view.n_tombstones() == 0 {
                    0
                } else {
                    self.ts.triples.iter().filter(|t| view.is_deleted(**t)).count()
                };
                self.ts.len() - deleted_base + view.n_inserts()
            }
        }
    }

    pub fn dict(&self) -> &Dictionary {
        &self.ts.dict
    }

    // ---- writes (the delta path) -------------------------------------------

    /// Insert an N-Triples document. Before any generation is built this is
    /// plain staging ([`Database::load_ntriples`]); afterwards the triples
    /// land in the delta store — sorted in-memory runs the query engine
    /// merges with the base scans — and each inserted subject is routed
    /// against the discovered schema for drift tracking. No built column is
    /// touched; call [`Database::maybe_reorganize`] to fold the delta into a
    /// fresh organized generation when drift warrants it.
    pub fn insert_ntriples(&mut self, text: &str) -> Result<usize, Error> {
        let parsed = ntriples::parse_document(text)?;
        self.insert_terms(&parsed)
    }

    /// Insert term triples (the [`Database::insert_ntriples`] of generators).
    pub fn insert_terms(&mut self, triples: &[TermTriple]) -> Result<usize, Error> {
        if triples.is_empty() {
            return Ok(0);
        }
        if !self.any_generation_built() {
            return self.load_terms(triples);
        }
        let mut encoded = Vec::with_capacity(triples.len());
        for t in triples {
            encoded.push(self.ts.encode(t)?);
        }
        self.route_inserts(&encoded);
        if self.clustered.is_some() && self.ts.dict.n_strings() > self.strings_sorted_len {
            // New string literals sit past the sorted prefix: string-OID
            // order no longer equals value order, the engine must decode.
            self.delta.set_strings_appended();
        }
        self.delta.insert_run(encoded);
        Ok(triples.len())
    }

    /// Delete exact triples (RDF set semantics: every visible occurrence of
    /// each triple is removed). Unknown terms match nothing. Deletes are
    /// tombstones — base columns are untouched; scans filter. Returns the
    /// number of distinct triples actually deleted.
    pub fn delete_triples(&mut self, triples: &[TermTriple]) -> Result<usize, Error> {
        let mut targets = Vec::with_capacity(triples.len());
        for t in triples {
            let (Some(s), Some(p), Some(o)) = (
                term_oid_skolemized(&self.ts.dict, &t.s),
                term_oid_skolemized(&self.ts.dict, &t.p),
                term_oid_skolemized(&self.ts.dict, &t.o),
            ) else {
                continue;
            };
            targets.push(Triple::new(s, p, o));
        }
        targets.sort_unstable();
        targets.dedup();
        self.delete_encoded(targets)
    }

    /// Delete every visible triple matching the pattern (`None` = wildcard).
    /// Returns the number of distinct triples deleted.
    pub fn delete_matching(
        &mut self,
        s: Option<&Term>,
        p: Option<&Term>,
        o: Option<&Term>,
    ) -> Result<usize, Error> {
        let enc = |t: Option<&Term>| -> Result<Option<Oid>, ()> {
            match t {
                None => Ok(None),
                Some(term) => match term_oid_skolemized(&self.ts.dict, term) {
                    Some(oid) => Ok(Some(oid)),
                    None => Err(()), // unknown term: nothing can match
                },
            }
        };
        let (s, p, o) = match (enc(s), enc(p), enc(o)) {
            (Ok(s), Ok(p), Ok(o)) => (s, p, o),
            _ => return Ok(0),
        };
        let matches = |t: &Triple| {
            s.map_or(true, |x| t.s == x)
                && p.map_or(true, |x| t.p == x)
                && o.map_or(true, |x| t.o == x)
        };
        let mut targets: Vec<Triple> = {
            let view = self.delta.current_view();
            let mut v: Vec<Triple> = self
                .ts
                .triples
                .iter()
                .filter(|t| matches(t) && view.map_or(true, |d| !d.is_deleted(**t)))
                .copied()
                .collect();
            if let Some(d) = view {
                v.extend(d.inserts().iter().filter(|t| matches(t)));
            }
            v
        };
        targets.sort_unstable();
        targets.dedup();
        self.delete_encoded(targets)
    }

    /// Tombstone already-encoded triples that are currently visible.
    fn delete_encoded(&mut self, targets: Vec<Triple>) -> Result<usize, Error> {
        if targets.is_empty() {
            return Ok(0);
        }
        if !self.any_generation_built() {
            // Staging mode: remove from the base set directly.
            let set: FxHashSet<Triple> = targets.into_iter().collect();
            let before = self.ts.len();
            self.ts.triples.retain(|t| !set.contains(t));
            return Ok(before - self.ts.len());
        }
        let visible: Vec<Triple> = {
            let view = self.delta.current_view();
            // One pass over the base against a targets-sized set (not the
            // other way round — the base can be large, the batch is small).
            let target_set: FxHashSet<Triple> = targets.iter().copied().collect();
            let mut in_base: FxHashSet<Triple> = FxHashSet::default();
            for t in &self.ts.triples {
                if target_set.contains(t) {
                    in_base.insert(*t);
                }
            }
            targets
                .into_iter()
                .filter(|&t| match view {
                    None => in_base.contains(&t),
                    Some(d) => {
                        (in_base.contains(&t) && !d.is_deleted(t))
                            || d.insert_pairs_for(t.p, Some((t.s.raw(), t.s.raw())))
                                .any(|(_, o)| o == t.o)
                    }
                })
                .collect()
        };
        if visible.is_empty() {
            return Ok(0);
        }
        let n = visible.len();
        self.delta.delete(&visible);
        Ok(n)
    }

    /// A snapshot of the current write sequence. Queries pinned to it via
    /// [`Database::query_snapshot`] see exactly the writes applied so far —
    /// later inserts and deletes are invisible to them (MVCC-lite: the delta
    /// store keeps every version until the next reorganization).
    pub fn snapshot(&self) -> Snapshot {
        self.delta.snapshot()
    }

    /// Run a SPARQL query pinned to a [`Snapshot`] (newest generation,
    /// default configuration).
    pub fn query_snapshot(&self, sparql: &str, snap: Snapshot) -> Result<ResultSet, Error> {
        Ok(self
            .query_traced_impl(sparql, self.default_generation()?, self.config, None, Some(snap))?
            .results)
    }

    /// Incremental-routing drift statistics: how far the live data has
    /// diverged from the organized base generation.
    pub fn drift_stats(&self) -> DriftStats {
        let n_base_irregular = match (&self.clustered, &self.cs_parse_order) {
            (Some(store), _) => store.irregular.len() as u64,
            (None, Some((store, _))) => store.irregular.len() as u64,
            _ => 0,
        };
        let view = self.delta.current_view();
        let (matched, pending, fill) = match &self.write {
            Some(w) => (
                w.pending_class.len() as u64,
                w.pending_props.len() as u64,
                w.per_class_fill.clone(),
            ),
            None => (0, 0, Vec::new()),
        };
        DriftStats {
            n_base_triples: self.ts.len() as u64,
            n_base_irregular,
            n_delta_inserts: view.map_or(0, |v| v.n_inserts() as u64),
            n_tombstones: self.delta.n_tombstones() as u64,
            matched_subjects: matched,
            unmatched_subjects: pending.saturating_sub(matched),
            per_class_fill: fill,
        }
    }

    /// Adaptive reorganization: evaluate `policy` against the current
    /// [`DriftStats`] and, when a threshold fires, collapse the delta into
    /// the base set and rebuild every live generation (schema re-discovery,
    /// subject re-clustering, fresh column segments) behind the query API.
    pub fn maybe_reorganize(&mut self, policy: &ReorgPolicy) -> Result<ReorgOutcome, Error> {
        let drift = self.drift_stats();
        let Some(reason) = policy.trigger_reason(&drift) else {
            return Ok(ReorgOutcome {
                fired: false,
                reason: None,
                drift_before: drift,
                irregular_ratio_after: None,
                report: None,
            });
        };
        self.reorganize_now()?;
        let irregular_ratio_after = self.clustered.as_ref().map(|store| {
            store.irregular.len() as f64 / store.n_triples().max(1) as f64
        });
        Ok(ReorgOutcome {
            fired: true,
            reason: Some(reason),
            drift_before: drift,
            irregular_ratio_after,
            report: self.reorg_report.clone(),
        })
    }

    /// Unconditional reorganization: collapse the pending delta into the
    /// base set and rebuild whatever generations were built (a clustered
    /// database re-runs discovery + clustering; a baseline/CS database
    /// rebuilds its indexes over the merged data).
    pub fn reorganize_now(&mut self) -> Result<(), Error> {
        let had_baseline = self.baseline.is_some();
        let had_cs = self.cs_parse_order.is_some();
        let had_clustered = self.clustered.is_some();
        self.collapse_delta_into_base();
        self.invalidate();
        if had_clustered {
            self.self_organize()?;
        }
        if had_cs {
            // After self_organize this rebuilds sparse CS tables under the
            // frozen (fresh) schema over the re-clustered OIDs; without a
            // clustered generation it re-discovers from the merged data.
            self.build_cs_tables()?;
        }
        if had_baseline {
            // After self_organize the OIDs are re-clustered; the baseline is
            // rebuilt over the new numbering so generations stay consistent.
            self.build_baseline()?;
        }
        Ok(())
    }

    /// Fold pending delta writes into the base triple set and reset the
    /// write state. Callers that keep built generations alive must rebuild
    /// them afterwards. Returns whether anything changed.
    fn collapse_delta_into_base(&mut self) -> bool {
        if self.delta.is_empty() {
            self.write = None;
            return false;
        }
        if let Some(view) = self.delta.current_view() {
            if view.n_tombstones() > 0 {
                self.ts.triples.retain(|t| !view.is_deleted(*t));
            }
        }
        let inserts = self.delta.visible_inserts();
        self.ts.triples.extend(inserts);
        self.delta = DeltaStore::new();
        self.write = None;
        true
    }

    /// Route one insert batch's subjects through the incremental assigner
    /// (drift bookkeeping only — queries read delta triples through the
    /// merged scans regardless of routing).
    fn route_inserts(&mut self, encoded: &[Triple]) {
        let Some(schema) = &self.schema else { return };
        let w = self.write.get_or_insert_with(|| WriteState {
            assigner: IncrementalAssigner::new(schema),
            pending_props: FxHashMap::default(),
            pending_class: FxHashMap::default(),
            per_class_fill: vec![0; schema.classes.len()],
        });
        let mut by_subject: FxHashMap<Oid, (Vec<Oid>, u64)> = FxHashMap::default();
        for t in encoded {
            let e = by_subject.entry(t.s).or_default();
            e.0.push(t.p);
            e.1 += 1;
        }
        let cfg = &self.schema_cfg;
        for (s, (mut props, n)) in by_subject {
            if let Some(cid) = schema.class_of(s) {
                // Known subject: its delta triples will cluster back into
                // its class at the next reorganization.
                w.per_class_fill[cid.0 as usize] += n;
                continue;
            }
            props.sort_unstable();
            props.dedup();
            let merged: Vec<Oid> = match w.pending_props.get_mut(&s) {
                Some(prev) => {
                    prev.extend(props);
                    prev.sort_unstable();
                    prev.dedup();
                    prev.clone()
                }
                None => {
                    w.pending_props.insert(s, props.clone());
                    props
                }
            };
            match w.assigner.route(&merged, cfg) {
                Some(cid) => {
                    w.pending_class.insert(s, cid);
                    w.per_class_fill[cid.0 as usize] += n;
                }
                None => {
                    w.pending_class.remove(&s);
                }
            }
        }
    }

    // ---- building generations ----------------------------------------------

    /// Pending delta writes make a *partial* rebuild unsound (the new store
    /// would disagree with the surviving ones about the visible data); the
    /// rebuild entry points below refuse instead.
    fn ensure_no_pending_writes(&self, what: &str) -> Result<(), Error> {
        if self.delta.is_empty() {
            Ok(())
        } else {
            Err(Error::State(format!(
                "{what} with pending writes: call reorganize_now() (or maybe_reorganize) first"
            )))
        }
    }

    /// Build the exhaustive-index baseline (Table I's "ParseOrder" scheme).
    pub fn build_baseline(&mut self) -> Result<(), Error> {
        if self.baseline.is_none() {
            self.ensure_no_pending_writes("build_baseline()")?;
            let spo = self.ts.sorted_spo();
            self.baseline = Some(BaselineStore::build(&self.dm, &spo));
        }
        Ok(())
    }

    /// Run schema discovery (idempotent). Returns coverage.
    pub fn discover_schema(&mut self, cfg: &SchemaConfig) -> Result<f64, Error> {
        if self.clustered.is_some() {
            return Err(Error::State("schema already frozen by self_organize()".into()));
        }
        self.ensure_no_pending_writes("discover_schema()")?;
        let spo = self.ts.sorted_spo();
        let schema = sordf_schema::discover(&spo, &self.ts.dict, cfg);
        let coverage = schema.coverage;
        self.schema = Some(schema);
        self.schema_cfg = cfg.clone();
        Ok(coverage)
    }

    /// Build CS tables *without* renumbering OIDs (sparse segments) — the
    /// "RDFscan on ParseOrder" configuration.
    pub fn build_cs_tables(&mut self) -> Result<(), Error> {
        if self.cs_parse_order.is_some() {
            return Ok(());
        }
        self.ensure_no_pending_writes("build_cs_tables()")?;
        if self.schema.is_none() {
            let cfg = self.schema_cfg.clone();
            self.discover_schema(&cfg)?;
        }
        let mut schema = self.schema.clone().unwrap();
        let spo = self.ts.sorted_spo();
        let spec = ClusterSpec::auto(&schema);
        let store = build_clustered(&self.dm, &spo, &mut schema, &spec, false);
        self.cs_parse_order = Some((store, schema));
        Ok(())
    }

    /// Self-organize: discover the schema (if not yet done), cluster subject
    /// OIDs, sort literal OIDs, and rebuild storage as dense CS segments.
    /// Uses [`ClusterSpec::auto`] unless a spec was set via
    /// [`Database::self_organize_with`].
    pub fn self_organize(&mut self) -> Result<&EmergentSchema, Error> {
        if self.clustered.is_none() && self.collapse_delta_into_base() {
            // Pending writes changed the dataset; re-discover from scratch
            // (mirrors the collapse in self_organize_with).
            self.baseline = None;
            self.cs_parse_order = None;
            self.schema = None;
        }
        if self.schema.is_none() {
            let cfg = self.schema_cfg.clone();
            self.discover_schema(&cfg)?;
        }
        let spec = ClusterSpec::auto(self.schema.as_ref().unwrap());
        self.self_organize_with(spec)
    }

    /// Self-organize with an explicit clustering spec.
    pub fn self_organize_with(&mut self, spec: ClusterSpec) -> Result<&EmergentSchema, Error> {
        if self.clustered.is_some() {
            return Ok(self.schema.as_ref().unwrap());
        }
        if self.collapse_delta_into_base() {
            // Pending writes changed the dataset: schema/generations
            // discovered before them are stale.
            self.baseline = None;
            self.cs_parse_order = None;
            self.schema = None;
        }
        if self.schema.is_none() {
            let cfg = self.schema_cfg.clone();
            self.discover_schema(&cfg)?;
        }
        let mut schema = self.schema.take().unwrap();
        let report = reorganize(&mut self.ts, &mut schema, &spec);
        let spo = self.ts.sorted_spo();
        let store = build_clustered(&self.dm, &spo, &mut schema, &spec, true);
        self.clustered = Some(store);
        self.schema = Some(schema);
        self.spec = spec;
        self.reorg_report = Some(report);
        // The string pool was just sorted: OID order equals value order for
        // everything interned so far.
        self.strings_sorted_len = self.ts.dict.n_strings();
        // Parse-order generations hold stale OIDs now.
        self.baseline = None;
        self.cs_parse_order = None;
        Ok(self.schema.as_ref().unwrap())
    }

    /// The discovered schema, if any.
    pub fn schema(&self) -> Option<&EmergentSchema> {
        self.schema.as_ref()
    }

    /// The clustering report, if self-organized.
    pub fn reorg_report(&self) -> Option<&ReorgReport> {
        self.reorg_report.as_ref()
    }

    /// The clustered store, if self-organized.
    pub fn clustered_store(&self) -> Option<&ClusteredStore> {
        self.clustered.as_ref()
    }

    /// Render the SQL view of the emergent schema.
    pub fn ddl(&self) -> Result<String, Error> {
        let schema =
            self.schema.as_ref().ok_or(Error::State("no schema discovered yet".into()))?;
        Ok(schema.render_ddl(&self.ts.dict))
    }

    // ---- querying ----------------------------------------------------------

    /// Default engine configuration used by [`Database::query`].
    pub fn set_config(&mut self, config: ExecConfig) {
        self.config = config;
    }

    /// Drop the page cache: the next query runs *cold*.
    pub fn drop_cache(&self) {
        self.pool.clear();
    }

    /// Configure synthetic per-page-read latency (models disk I/O in the
    /// cold-run experiments).
    pub fn set_read_latency_ns(&self, ns: u64) {
        self.pool.set_read_latency_ns(ns);
    }

    /// Buffer pool statistics.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// The underlying buffer pool (advanced use: custom execution contexts,
    /// benchmark instrumentation).
    pub fn buffer_pool(&self) -> &BufferPool {
        &self.pool
    }

    fn storage_for(&self, generation: Generation) -> Result<StorageRef<'_>, Error> {
        match generation {
            Generation::Baseline => self
                .baseline
                .as_ref()
                .map(StorageRef::Baseline)
                .ok_or(Error::State("baseline not built; call build_baseline()".into())),
            Generation::CsParseOrder => self
                .cs_parse_order
                .as_ref()
                .map(|(store, schema)| StorageRef::Clustered { store, schema })
                .ok_or(Error::State("CS tables not built; call build_cs_tables()".into())),
            Generation::Clustered => match (&self.clustered, &self.schema) {
                (Some(store), Some(schema)) => Ok(StorageRef::Clustered { store, schema }),
                _ => Err(Error::State("not self-organized; call self_organize()".into())),
            },
        }
    }

    /// The newest generation that has been built.
    pub fn default_generation(&self) -> Result<Generation, Error> {
        if self.clustered.is_some() {
            Ok(Generation::Clustered)
        } else if self.cs_parse_order.is_some() {
            Ok(Generation::CsParseOrder)
        } else if self.baseline.is_some() {
            Ok(Generation::Baseline)
        } else {
            Err(Error::State("no storage built; load data and call self_organize()".into()))
        }
    }

    /// Run a SPARQL query against the newest generation with the default
    /// configuration.
    pub fn query(&self, sparql: &str) -> Result<ResultSet, Error> {
        Ok(self.query_traced(sparql, self.default_generation()?, self.config)?.results)
    }

    /// Run a SPARQL query pinned to a generation + configuration.
    pub fn query_with(
        &self,
        sparql: &str,
        generation: Generation,
        config: ExecConfig,
    ) -> Result<ResultSet, Error> {
        Ok(self.query_traced(sparql, generation, config)?.results)
    }

    /// Run a SPARQL query and return operator/pool statistics with it.
    pub fn query_traced(
        &self,
        sparql: &str,
        generation: Generation,
        config: ExecConfig,
    ) -> Result<Traced, Error> {
        self.query_traced_impl(sparql, generation, config, None, None)
    }

    /// Run a SPARQL query with morsel-parallel operators (see
    /// [`sordf_engine::parallel`]): page/row ranges are split across
    /// `parallel.workers` scoped threads sharing this database's buffer
    /// pool. Non-aggregate results are byte-identical to the sequential
    /// path (same rows, same order); SUM/AVG aggregates merge per-worker
    /// partials through the compensated accumulator and may differ from
    /// the sequential value in the last ulp (canonical/rendered forms
    /// agree — do not compare raw aggregate `f64`s bitwise).
    pub fn query_parallel(
        &self,
        sparql: &str,
        parallel: &ParallelConfig,
    ) -> Result<ResultSet, Error> {
        Ok(self
            .query_traced_parallel(sparql, self.default_generation()?, self.config, parallel)?
            .results)
    }

    /// [`Database::query_parallel`] pinned to a generation + configuration,
    /// returning operator/pool statistics with the results.
    pub fn query_traced_parallel(
        &self,
        sparql: &str,
        generation: Generation,
        config: ExecConfig,
        parallel: &ParallelConfig,
    ) -> Result<Traced, Error> {
        self.query_traced_impl(sparql, generation, config, Some(parallel), None)
    }

    fn query_traced_impl(
        &self,
        sparql: &str,
        generation: Generation,
        config: ExecConfig,
        parallel: Option<&ParallelConfig>,
        snap: Option<Snapshot>,
    ) -> Result<Traced, Error> {
        let query = sordf_sparql::parse_sparql(sparql, &self.ts.dict)?;
        let storage = self.storage_for(generation)?;
        // Pick the delta view this query reads: the cached current view, or
        // a historical one materialized for the pinned snapshot.
        let owned_view: Option<DeltaView>;
        let view: Option<&DeltaView> = match snap {
            Some(s) if s.seq() != self.delta.seq() => {
                owned_view = Some(self.delta.view_at(s));
                owned_view.as_ref()
            }
            _ => self.delta.current_view(),
        };
        let cx = ExecContext::new(&self.pool, &self.ts.dict, storage, config).with_delta(view);
        let pool_before = self.pool.stats();
        // Query-boundary fault isolation: an engine panic (e.g. a page read
        // that keeps failing after the pool's retries) fails this query, not
        // the process — the next query sees intact immutable storage.
        let results = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match parallel {
            None => sordf_engine::execute(&cx, &query),
            Some(par) => sordf_engine::execute_parallel(&cx, &query, par),
        }))
        .map_err(|payload| Error::Exec(panic_message(payload)))?;
        Ok(Traced {
            results,
            stats: cx.stats.snapshot(),
            pool: self.pool.stats().since(&pool_before),
        })
    }

    /// Explain the plan a SPARQL query would get.
    pub fn explain(&self, sparql: &str) -> Result<PlanInfo, Error> {
        let query = sordf_sparql::parse_sparql(sparql, &self.ts.dict)?;
        let storage = self.storage_for(self.default_generation()?)?;
        let cx = ExecContext::new(&self.pool, &self.ts.dict, storage, self.config)
            .with_delta(self.delta.current_view());
        Ok(sordf_engine::explain(&cx, &query))
    }

    /// Run a SQL query against the emergent relational schema (requires
    /// [`Database::self_organize`] first).
    pub fn sql(&self, sql: &str) -> Result<ResultSet, Error> {
        let (Some(store), Some(schema)) = (&self.clustered, &self.schema) else {
            return Err(Error::State("SQL view requires self_organize() first".into()));
        };
        let query = sordf_sql::compile_sql(sql, schema, store, &self.ts.dict)
            .map_err(Error::Sql)?;
        let storage = StorageRef::Clustered { store, schema };
        // Deletes of base rows are respected through the delta view; rows
        // inserted since the last reorganization join the SQL view when
        // `maybe_reorganize` clusters them into their class segment.
        let cx = ExecContext::new(&self.pool, &self.ts.dict, storage, self.config)
            .with_delta(self.delta.current_view());
        Ok(sordf_engine::execute(&cx, &query))
    }
}

/// Encode a term for lookup without interning, skolemizing blank nodes the
/// way [`TripleSet::add`] does (shared scheme: [`Term::skolem_blank_iri`]).
fn term_oid_skolemized(dict: &Dictionary, t: &Term) -> Option<Oid> {
    match t {
        Term::Blank(label) => dict.iri_oid(&Term::skolem_blank_iri(label)),
        other => dict.term_oid(other),
    }
}

/// Render a panic payload as a message (best effort).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "engine panicked".to_string()
    }
}

/// Compile-time thread-safety audit: one `Database` serves concurrent
/// queries from many threads (shared pool, per-query contexts).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Database>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use sordf_model::Term;

    fn sample_db() -> Database {
        let mut db = Database::in_temp_dir().unwrap();
        let mut triples = Vec::new();
        for i in 0..50u64 {
            let s = format!("http://ex/item{i}");
            triples.push(TermTriple::new(
                Term::iri(s.clone()),
                Term::iri("http://ex/qty"),
                Term::int((i % 10) as i64),
            ));
            triples.push(TermTriple::new(
                Term::iri(s),
                Term::iri("http://ex/sold"),
                Term::date(&format!("1996-01-{:02}", (i % 28) + 1)),
            ));
        }
        db.load_terms(&triples).unwrap();
        db
    }

    #[test]
    fn lifecycle_and_query() {
        let mut db = sample_db();
        db.build_baseline().unwrap();
        let rs = db
            .query_with(
                "SELECT ?s ?q WHERE { ?s <http://ex/qty> ?q . FILTER(?q = 3) }",
                Generation::Baseline,
                ExecConfig { scheme: PlanScheme::Default, zonemaps: false },
            )
            .unwrap();
        assert_eq!(rs.len(), 5);

        db.self_organize().unwrap();
        let rs2 = db
            .query("SELECT ?s ?q WHERE { ?s <http://ex/qty> ?q . FILTER(?q = 3) }")
            .unwrap();
        assert_eq!(rs2.len(), 5);
        assert!(db.schema().unwrap().coverage > 0.99);
        assert!(db.reorg_report().is_some());
    }

    #[test]
    fn cold_vs_hot_pool_stats() {
        let mut db = sample_db();
        db.self_organize().unwrap();
        let q = "SELECT ?s WHERE { ?s <http://ex/qty> ?q . FILTER(?q < 5) }";
        db.drop_cache();
        let cold = db
            .query_traced(q, Generation::Clustered, ExecConfig::default())
            .unwrap();
        let hot = db
            .query_traced(q, Generation::Clustered, ExecConfig::default())
            .unwrap();
        assert!(cold.pool.misses > 0, "cold run must read pages");
        assert_eq!(hot.pool.misses, 0, "hot run must be fully cached");
        assert_eq!(cold.results.len(), hot.results.len());
    }

    #[test]
    fn query_before_build_errors() {
        let db = Database::in_temp_dir().unwrap();
        assert!(matches!(
            db.query("SELECT ?s WHERE { ?s <http://x/p> ?o . }"),
            Err(Error::State(_))
        ));
    }

    #[test]
    fn ddl_rendering() {
        let mut db = sample_db();
        db.self_organize().unwrap();
        let ddl = db.ddl().unwrap();
        assert!(ddl.contains("CREATE TABLE"), "{ddl}");
        assert!(ddl.contains("qty"), "{ddl}");
    }

    #[test]
    fn insert_delete_after_organize() {
        let mut db = sample_db();
        db.self_organize().unwrap();
        let q = "SELECT ?s ?q WHERE { ?s <http://ex/qty> ?q . FILTER(?q = 3) }";
        assert_eq!(db.query(q).unwrap().len(), 5);

        // Insert two more subjects with qty 3 (one schema-conforming with
        // both class properties, one qty-only).
        db.insert_ntriples(
            r#"<http://ex/new1> <http://ex/qty> "3"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://ex/new1> <http://ex/sold> "1996-02-01"^^<http://www.w3.org/2001/XMLSchema#date> .
<http://ex/new2> <http://ex/qty> "3"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://ex/new2> <http://ex/color> <http://ex/red> .
<http://ex/new2> <http://ex/shape> <http://ex/round> .
<http://ex/new2> <http://ex/size> <http://ex/big> ."#,
        )
        .unwrap();
        assert_eq!(db.query(q).unwrap().len(), 7, "inserts visible without rebuild");

        // Delete one of the original qty=3 triples.
        let victim = TermTriple::new(
            Term::iri("http://ex/item3"),
            Term::iri("http://ex/qty"),
            Term::int(3),
        );
        assert_eq!(db.delete_triples(std::slice::from_ref(&victim)).unwrap(), 1);
        assert_eq!(db.query(q).unwrap().len(), 6, "tombstone filters the base value");
        // Deleting again is a no-op (already invisible).
        assert_eq!(db.delete_triples(std::slice::from_ref(&victim)).unwrap(), 0);

        // Parallel execution sees the identical merged store.
        let par = db
            .query_parallel(q, &ParallelConfig { workers: 2, min_morsel_pages: 1, min_morsel_rows: 1 })
            .unwrap();
        assert_eq!(par.canonical(db.dict()), db.query(q).unwrap().canonical(db.dict()));

        let drift = db.drift_stats();
        assert_eq!(drift.n_delta_inserts, 6);
        assert_eq!(drift.n_tombstones, 1);
        assert_eq!(drift.matched_subjects, 1, "new1 has the class's property set");
        assert_eq!(drift.unmatched_subjects, 1, "new2's property set fits no class");
    }

    #[test]
    fn snapshots_pin_write_history() {
        let mut db = sample_db();
        db.self_organize().unwrap();
        let q = "SELECT ?s ?q WHERE { ?s <http://ex/qty> ?q . FILTER(?q = 3) }";
        let snap0 = db.snapshot();
        db.insert_ntriples(
            r#"<http://ex/new1> <http://ex/qty> "3"^^<http://www.w3.org/2001/XMLSchema#integer> ."#,
        )
        .unwrap();
        let snap1 = db.snapshot();
        db.delete_matching(None, Some(&Term::iri("http://ex/qty")), Some(&Term::int(3)))
            .unwrap();
        assert_eq!(db.query(q).unwrap().len(), 0, "all qty=3 deleted");
        assert_eq!(db.query_snapshot(q, snap1).unwrap().len(), 6, "pre-delete snapshot");
        assert_eq!(db.query_snapshot(q, snap0).unwrap().len(), 5, "pre-insert snapshot");
        // Current snapshot equals the live query.
        assert_eq!(db.query_snapshot(q, db.snapshot()).unwrap().len(), 0);
    }

    #[test]
    fn maybe_reorganize_collapses_delta() {
        let mut db = sample_db();
        db.self_organize().unwrap();
        let q = "SELECT ?s ?q WHERE { ?s <http://ex/qty> ?q . FILTER(?q = 3) }";
        db.insert_ntriples(
            r#"<http://ex/new1> <http://ex/qty> "3"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://ex/new1> <http://ex/sold> "1996-02-01"^^<http://www.w3.org/2001/XMLSchema#date> ."#,
        )
        .unwrap();
        db.delete_matching(Some(&Term::iri("http://ex/item3")), None, None).unwrap();
        let before = db.query(q).unwrap().canonical(db.dict());
        let n_before = db.n_triples();

        // A lenient policy does not fire on two writes.
        let calm = db.maybe_reorganize(&ReorgPolicy::default()).unwrap();
        assert!(!calm.fired);

        let outcome = db.maybe_reorganize(&ReorgPolicy::eager()).unwrap();
        assert!(outcome.fired, "eager policy fires on any pending write");
        assert!(outcome.report.is_some());
        assert_eq!(outcome.irregular_ratio_after, Some(0.0), "delta fully clustered in");
        assert_eq!(db.n_triples(), n_before, "logical content unchanged");
        assert_eq!(db.drift_stats().n_delta_inserts, 0, "delta collapsed");
        assert_eq!(db.query(q).unwrap().canonical(db.dict()), before, "results preserved");
        // The new subject now lives in a class segment.
        let s = db.dict().iri_oid("http://ex/new1").unwrap();
        assert!(db.schema().unwrap().class_of(s).is_some());
        // Nothing pending: eager policy has nothing to do.
        assert!(!db.maybe_reorganize(&ReorgPolicy::eager()).unwrap().fired);
    }

    #[test]
    fn string_inserts_disable_oid_order_pushdown() {
        let mut db = Database::in_temp_dir().unwrap();
        let mut triples = Vec::new();
        for (i, label) in ["apple", "banana", "cherry", "damson"].iter().enumerate() {
            let s = format!("http://ex/thing{i}");
            triples.push(TermTriple::new(
                Term::iri(s.clone()),
                Term::iri("http://ex/label"),
                Term::str(*label),
            ));
            triples.push(TermTriple::new(
                Term::iri(s),
                Term::iri("http://ex/rank"),
                Term::int(i as i64),
            ));
        }
        db.load_terms(&triples).unwrap();
        db.self_organize().unwrap();
        let q = r#"SELECT ?s WHERE { ?s <http://ex/label> ?l . FILTER(?l < "banana") }"#;
        assert_eq!(db.query(q).unwrap().len(), 1, "only apple");
        // "azure" sorts between apple and banana but its OID is appended at
        // the end of the pool: an OID-range pushdown would miss it.
        db.insert_ntriples(
            r#"<http://ex/thing9> <http://ex/label> "azure" .
<http://ex/thing9> <http://ex/rank> "9"^^<http://www.w3.org/2001/XMLSchema#integer> ."#,
        )
        .unwrap();
        assert_eq!(db.query(q).unwrap().len(), 2, "apple and azure");
        // After reorganization the pool is re-sorted and pushdown is safe again.
        db.reorganize_now().unwrap();
        assert_eq!(db.query(q).unwrap().len(), 2);
    }

    #[test]
    fn rebuilds_with_pending_writes_are_refused() {
        let mut db = sample_db();
        db.build_baseline().unwrap();
        db.insert_ntriples(
            r#"<http://ex/new1> <http://ex/qty> "3"^^<http://www.w3.org/2001/XMLSchema#integer> ."#,
        )
        .unwrap();
        assert!(matches!(db.discover_schema(&SchemaConfig::default()), Err(Error::State(_))));
        assert!(matches!(db.build_cs_tables(), Err(Error::State(_))));
        // self_organize collapses the pending writes instead of refusing.
        db.self_organize().unwrap();
        let rs = db
            .query("SELECT ?s ?q WHERE { ?s <http://ex/qty> ?q . FILTER(?q = 3) }")
            .unwrap();
        assert_eq!(rs.len(), 6);
    }

    #[test]
    fn reorganize_rebuilds_every_live_generation() {
        let mut db = sample_db();
        db.self_organize().unwrap();
        db.build_cs_tables().unwrap();
        db.build_baseline().unwrap();
        let q = "SELECT ?s ?q WHERE { ?s <http://ex/qty> ?q . FILTER(?q = 3) }";
        db.insert_ntriples(
            r#"<http://ex/new1> <http://ex/qty> "3"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://ex/new1> <http://ex/sold> "1996-02-01"^^<http://www.w3.org/2001/XMLSchema#date> ."#,
        )
        .unwrap();
        db.reorganize_now().unwrap();
        for generation in [Generation::Baseline, Generation::CsParseOrder, Generation::Clustered]
        {
            let rs = db.query_with(q, generation, ExecConfig::default()).unwrap();
            assert_eq!(rs.len(), 6, "{generation:?} must survive the reorg");
        }
    }

    #[test]
    fn baseline_generation_supports_writes() {
        let mut db = sample_db();
        db.build_baseline().unwrap();
        let q = "SELECT ?s ?q WHERE { ?s <http://ex/qty> ?q . FILTER(?q = 3) }";
        assert_eq!(db.query(q).unwrap().len(), 5);
        db.insert_ntriples(
            r#"<http://ex/new1> <http://ex/qty> "3"^^<http://www.w3.org/2001/XMLSchema#integer> ."#,
        )
        .unwrap();
        db.delete_matching(Some(&Term::iri("http://ex/item3")), None, None).unwrap();
        assert_eq!(db.query(q).unwrap().len(), 5, "one in, one out");
        db.reorganize_now().unwrap();
        assert_eq!(db.query(q).unwrap().len(), 5, "rebuilt baseline agrees");
        assert!(db.clustered_store().is_none(), "reorg does not force organization");
    }

    #[test]
    fn doc_example_compiles_and_runs() {
        // Mirror of the crate-level doc example.
        let mut db = Database::in_temp_dir().unwrap();
        db.load_ntriples(
            r#"<http://ex/book1> <http://ex/has_author> <http://ex/author1> .
<http://ex/book1> <http://ex/in_year> "1996"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://ex/book1> <http://ex/isbn_no> "1-56619-909-3" ."#,
        )
        .unwrap();
        db.self_organize().unwrap();
        let rs = db
            .query(
                "SELECT ?a ?n WHERE { ?b <http://ex/has_author> ?a . ?b <http://ex/isbn_no> ?n . }",
            )
            .unwrap();
        assert_eq!(rs.len(), 1);
    }
}
