//! Shared bench-binary plumbing: argument parsing (`--smoke` / `--sf` /
//! `--out` / `--baseline`), pacing, timing loops, and the standard JSON
//! envelope every bench artifact carries (`bench` name, `sf`, `host_cpus` —
//! so perf numbers are never read without knowing what machine produced
//! them). The perf bins (`bench_vectorized`, `bench_parallel`,
//! `bench_updates`) share this module instead of re-rolling it.

use std::fmt::Write as _;
use std::time::Instant;

/// Parsed common arguments of a perf bench binary.
pub struct BenchArgs {
    /// `--smoke`: tiny scale + few iterations, for CI release smokes.
    pub smoke: bool,
    /// `--sf F` (default 0.005, smoke default 0.001).
    pub sf: f64,
    /// `--out PATH` (default per binary).
    pub out_path: String,
    /// `--baseline PATH`, loaded file contents (for speedup reporting).
    pub baseline: Option<String>,
    /// Minimum wall-clock seconds per timing loop.
    pub min_secs: f64,
    /// Minimum iterations per timing loop.
    pub min_iters: u64,
}

impl BenchArgs {
    /// Parse the process arguments with the shared defaults.
    pub fn parse(default_out: &str) -> BenchArgs {
        let args: Vec<String> = std::env::args().collect();
        let flag_val = |name: &str| -> Option<String> {
            args.iter()
                .position(|a| a == name)
                .and_then(|i| args.get(i + 1).cloned())
        };
        let smoke = args.iter().any(|a| a == "--smoke");
        let sf = flag_val("--sf")
            .and_then(|s| s.parse().ok())
            .unwrap_or(if smoke { 0.001 } else { 0.005 });
        let out_path = flag_val("--out").unwrap_or_else(|| default_out.to_string());
        let baseline = flag_val("--baseline").and_then(|p| std::fs::read_to_string(p).ok());
        let (min_secs, min_iters) = if smoke { (0.1, 2) } else { (1.5, 10) };
        BenchArgs {
            smoke,
            sf,
            out_path,
            baseline,
            min_secs,
            min_iters,
        }
    }
}

/// The host's available parallelism — recorded in every bench JSON.
pub fn host_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run `body` until both bounds are met; returns iterations/second.
pub fn time_loop(min_secs: f64, min_iters: u64, mut body: impl FnMut()) -> f64 {
    let mut iters = 0u64;
    let t0 = Instant::now();
    loop {
        body();
        iters += 1;
        if iters >= min_iters && t0.elapsed().as_secs_f64() >= min_secs {
            break;
        }
    }
    iters as f64 / t0.elapsed().as_secs_f64()
}

/// Pull `"field": <number>` out of the named scenario object of a recorded
/// bench JSON (good enough for the flat artifacts this crate writes).
pub fn extract_scenario_field(json: &str, scenario: &str, field: &str) -> Option<f64> {
    let start = json.find(&format!("\"{scenario}\""))?;
    let obj = &json[start..start + json[start..].find('}')?];
    let fstart = obj.find(&format!("\"{field}\""))?;
    let rest = &obj[fstart..];
    let colon = rest.find(':')?;
    let num: String = rest[colon + 1..]
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    num.parse().ok()
}

/// A bench JSON artifact under construction. Opens with the standard
/// envelope — `bench`, `sf`, `host_cpus` — and renders top-level fields in
/// insertion order with correct comma placement.
pub struct BenchJson {
    fields: Vec<(String, String)>,
}

impl BenchJson {
    pub fn new(bench: &str, sf: f64) -> BenchJson {
        let mut j = BenchJson { fields: Vec::new() };
        j.raw("bench", format!("\"{bench}\""));
        j.raw("sf", format!("{sf}"));
        j.raw("host_cpus", format!("{}", host_cpus()));
        j
    }

    /// Add an integer field.
    pub fn int(&mut self, key: &str, v: u64) -> &mut Self {
        self.raw(key, format!("{v}"))
    }

    /// Add a float field with the given number of decimals.
    pub fn num(&mut self, key: &str, v: f64, decimals: usize) -> &mut Self {
        self.raw(key, format!("{v:.decimals$}"))
    }

    /// Add a pre-rendered value (nested objects keep their bespoke layout;
    /// multi-line values are indented to match).
    pub fn raw(&mut self, key: &str, rendered: String) -> &mut Self {
        self.fields.push((key.to_string(), rendered));
        self
    }

    /// Render the artifact.
    pub fn render(&self) -> String {
        let mut out = String::from("{\n");
        for (i, (key, val)) in self.fields.iter().enumerate() {
            let _ = write!(out, "  \"{key}\": {val}");
            out.push_str(if i + 1 < self.fields.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("}\n");
        out
    }

    /// Render, write to `out_path` and log the location.
    pub fn write(&self, out_path: &str) {
        std::fs::write(out_path, self.render()).expect("write bench json");
        println!("wrote {out_path}");
    }
}

/// Render a `{ "name": { ...fields... }, ... }` object from pre-rendered
/// per-entry bodies — the common shape of a scenarios/levels section.
pub fn render_object<'a>(entries: impl IntoIterator<Item = (&'a str, String)>) -> String {
    let entries: Vec<(&str, String)> = entries.into_iter().collect();
    let mut out = String::from("{\n");
    for (i, (name, body)) in entries.iter().enumerate() {
        let _ = write!(out, "    \"{name}\": {body}");
        out.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
    }
    out.push_str("  }");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_envelope_and_commas() {
        let mut j = BenchJson::new("demo", 0.005);
        j.int("n", 3).num("qps", 123.456, 2);
        j.raw("nested", render_object([("a", "{ \"x\": 1 }".to_string())]));
        let s = j.render();
        assert!(s.contains("\"bench\": \"demo\""));
        assert!(s.contains("\"sf\": 0.005"));
        assert!(s.contains("\"host_cpus\": "));
        assert!(s.contains("\"qps\": 123.46"));
        assert!(!s.contains(",\n}"), "no trailing comma:\n{s}");
        assert_eq!(extract_scenario_field(&s, "a", "x"), Some(1.0));
    }

    #[test]
    fn time_loop_respects_min_iters() {
        let mut n = 0;
        let qps = time_loop(0.0, 5, || n += 1);
        assert!(n >= 5);
        assert!(qps > 0.0);
    }
}
