//! # sordf-bench
//!
//! Shared harness for the paper-reproduction experiments. Each binary in
//! `src/bin/` regenerates one table or figure; the Criterion benches in
//! `benches/` provide statistically sound timings of the same comparisons.
//!
//! | artifact | binary |
//! |---|---|
//! | Table I (Q3/Q6, 6 configs, cold+hot) | `table1` |
//! | Fig. 2 (discovered schema) | example `schema_explore` (repo root) |
//! | Fig. 3 (subject clustering locality) | `fig3_clustering` |
//! | Fig. 4 (plan shapes / join effort) | `fig4_plans` |
//! | Ext-1 (CS merge ablation) | `schema_ablation` |
//! | Ext-3 (cardinality estimation) | `cardest` |
//! | Ext-4 (dirty-data sweep) | `dirty_sweep` |

pub mod cli;

use sordf::{Database, ExecConfig, Generation, PlanScheme, QueryRequest};
use sordf_rdfh::{generate, RdfhConfig};
use std::time::Instant;

/// One Table-I configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    pub label: &'static str,
    pub scheme: PlanScheme,
    pub generation: Generation,
    pub zonemaps: bool,
}

/// The six rows of Table I (plan scheme × OID scheme × zone maps).
pub const TABLE1_CONFIGS: [Config; 6] = [
    Config {
        label: "Default    ParseOrder  ZM=No ",
        scheme: PlanScheme::Default,
        generation: Generation::Baseline,
        zonemaps: false,
    },
    Config {
        label: "Default    Clustered   ZM=No ",
        scheme: PlanScheme::Default,
        generation: Generation::Clustered,
        zonemaps: false,
    },
    Config {
        label: "Default    Clustered   ZM=Yes",
        scheme: PlanScheme::Default,
        generation: Generation::Clustered,
        zonemaps: true,
    },
    Config {
        label: "RDFscan    ParseOrder  ZM=No ",
        scheme: PlanScheme::RdfScanJoin,
        generation: Generation::CsParseOrder,
        zonemaps: false,
    },
    Config {
        label: "RDFscan    Clustered   ZM=No ",
        scheme: PlanScheme::RdfScanJoin,
        generation: Generation::Clustered,
        zonemaps: false,
    },
    Config {
        label: "RDFscan    Clustered   ZM=Yes",
        scheme: PlanScheme::RdfScanJoin,
        generation: Generation::Clustered,
        zonemaps: true,
    },
];

/// The two databases of the experiment: one keeping parse-order OIDs (for
/// the Baseline and CsParseOrder generations), one self-organized.
pub struct Rig {
    pub parse_order: Database,
    pub clustered: Database,
    pub n_triples: usize,
}

/// Scale factor from `SORDF_SF` (default 0.01).
pub fn sf_from_env() -> f64 {
    std::env::var("SORDF_SF")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.01)
}

/// Synthetic cold-read latency per 64 KiB page, from `SORDF_PAGE_NS`
/// (default 20µs ≈ a fast HDD / slow SSD; 0 disables).
pub fn page_latency_from_env() -> u64 {
    std::env::var("SORDF_PAGE_NS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000)
}

/// Build both databases from one RDF-H generation run.
pub fn build_rig(sf: f64) -> Rig {
    let data = generate(&RdfhConfig::new(sf));
    eprintln!(
        "rdfh sf={sf}: {} triples ({} lineitems, {} orders, {} customers)",
        data.triples.len(),
        data.n_lineitem,
        data.n_orders,
        data.n_customer
    );
    rig_from(&data.triples, sordf::ColumnEncoding::default())
}

/// [`build_rig`] with an explicit page-encoding scheme, from pre-generated
/// triples — `bench_memory` builds the plain and compressed rigs from the
/// same data so the comparison sees identical content.
pub fn rig_from(triples: &[sordf_model::TermTriple], encoding: sordf::ColumnEncoding) -> Rig {
    let parse_order = Database::in_temp_dir().expect("temp db");
    parse_order.set_encoding(encoding);
    parse_order.load_terms(triples).expect("load");
    parse_order.build_baseline().expect("baseline");
    parse_order.build_cs_tables().expect("cs tables");

    let clustered = Database::in_temp_dir().expect("temp db");
    clustered.set_encoding(encoding);
    clustered.load_terms(triples).expect("load");
    clustered.self_organize().expect("self organize");

    Rig {
        parse_order,
        clustered,
        n_triples: triples.len(),
    }
}

impl Rig {
    /// The database holding a given generation.
    pub fn db(&self, generation: Generation) -> &Database {
        match generation {
            Generation::Baseline | Generation::CsParseOrder => &self.parse_order,
            Generation::Clustered => &self.clustered,
        }
    }
}

/// The hot scan-path scenarios measured by `bench_vectorized` and re-run
/// compressed-vs-plain by `bench_memory` (its ≤20% regression gate covers
/// every scenario here, so the two bins must agree on the list).
pub mod scenarios {
    use sordf::{ExecConfig, Generation, PlanScheme};
    use std::fmt::Write as _;

    /// One hot-path scenario: a query pinned to a generation + exec config.
    pub struct Scenario {
        pub name: &'static str,
        pub query: String,
        pub generation: Generation,
        pub exec: ExecConfig,
    }

    /// A width-`width` star over lineitem properties.
    pub fn star_query(width: usize) -> String {
        let props = [
            "lineitem_quantity",
            "lineitem_extendedprice",
            "lineitem_discount",
            "lineitem_tax",
            "lineitem_shipmode",
            "lineitem_returnflag",
        ];
        let mut body = String::new();
        for p in &props[..width] {
            let _ = writeln!(body, "?s <http://lod2.eu/schemas/rdfh#{p}> ?o_{p} .");
        }
        format!("SELECT ?s WHERE {{ {body} }}")
    }

    /// Q6 with a widened shipdate window (`months` of 1994+) — the zone-map
    /// selectivity knob.
    pub fn q6_query(months: u32) -> String {
        let end_year = 1994 + months / 12;
        let end_month = months % 12 + 1;
        format!(
            r#"PREFIX rdfh: <http://lod2.eu/schemas/rdfh#>
SELECT (SUM(?price * ?disc) AS ?rev) WHERE {{
  ?li rdfh:lineitem_shipdate ?d .
  ?li rdfh:lineitem_extendedprice ?price .
  ?li rdfh:lineitem_discount ?disc .
  FILTER(?d >= "1994-01-01"^^xsd:date && ?d < "{end_year}-{end_month:02}-01"^^xsd:date)
}}"#
        )
    }

    /// The vectorized-bench scenario list.
    pub fn all() -> Vec<Scenario> {
        let rdfscan = ExecConfig {
            scheme: PlanScheme::RdfScanJoin,
            zonemaps: true,
            ..Default::default()
        };
        let default = ExecConfig {
            scheme: PlanScheme::Default,
            zonemaps: true,
            ..Default::default()
        };
        vec![
            Scenario {
                name: "starjoin6_rdfscan",
                query: star_query(6),
                generation: Generation::Clustered,
                exec: rdfscan,
            },
            Scenario {
                name: "starjoin6_default",
                query: star_query(6),
                generation: Generation::Clustered,
                exec: default,
            },
            Scenario {
                name: "starjoin4_sparse",
                query: star_query(4),
                generation: Generation::CsParseOrder,
                exec: rdfscan,
            },
            Scenario {
                name: "zonemap_q6_3mo",
                query: q6_query(3),
                generation: Generation::Clustered,
                exec: rdfscan,
            },
            Scenario {
                name: "zonemap_q6_36mo",
                query: q6_query(36),
                generation: Generation::Clustered,
                exec: rdfscan,
            },
        ]
    }
}

/// Timing + trace of one query under one configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct Measurement {
    pub cold_ms: f64,
    pub hot_ms: f64,
    pub cold_page_reads: u64,
    pub joins: u64,
    pub n_rows: usize,
}

/// Run a query cold (cache dropped, synthetic page latency on) then hot.
pub fn measure(rig: &Rig, cfg: &Config, sparql: &str, page_ns: u64) -> Measurement {
    let db = rig.db(cfg.generation);
    let exec = ExecConfig {
        scheme: cfg.scheme,
        zonemaps: cfg.zonemaps,
        ..Default::default()
    };

    let req = QueryRequest::sparql(sparql)
        .generation(cfg.generation)
        .config(exec)
        .traced(true);

    // Warm up process-level state (code paths, allocator) so the cold
    // measurement reflects page reads, not first-run artifacts.
    let _ = db.execute(&req).expect("warmup");

    db.drop_cache();
    db.set_read_latency_ns(page_ns);
    let t0 = Instant::now();
    let cold = db.execute(&req).expect("query");
    let cold_ms = t0.elapsed().as_secs_f64() * 1e3;
    db.set_read_latency_ns(0);

    let t1 = Instant::now();
    let hot = db.execute(&req).expect("query");
    let hot_ms = t1.elapsed().as_secs_f64() * 1e3;

    Measurement {
        cold_ms,
        hot_ms,
        cold_page_reads: cold.pool.expect("traced").misses,
        joins: hot.stats.expect("traced").total_joins(),
        n_rows: hot.results.len(),
    }
}

/// Format one Table-I style row.
pub fn fmt_row(label: &str, m: &Measurement) -> String {
    format!(
        "{label}  cold {:>9.2} ms  hot {:>9.2} ms  pages {:>7}  joins {:>4}  rows {:>6}",
        m.cold_ms, m.hot_ms, m.cold_page_reads, m.joins, m.n_rows
    )
}
