//! **Ext-3** — cardinality estimation accuracy: characteristic sets vs. the
//! independence assumption.
//!
//! §I argues that "being unaware of structural correlations … makes it
//! difficult to estimate the join hit ratio between triple patterns". We
//! measure the estimation error (q-error = max(est/true, true/est)) of both
//! estimators on star queries of growing width over RDF-H lineitems.

use sordf::Generation;
use sordf_bench::{build_rig, sf_from_env};
use sordf_engine::cardest::{estimate_star_cs, estimate_star_independence};
use sordf_engine::star::stars_of;
use sordf_engine::{ExecConfig, ExecContext, PlanScheme, StorageRef};

fn q_error(est: f64, truth: f64) -> f64 {
    let (e, t) = (est.max(1.0), truth.max(1.0));
    (e / t).max(t / e)
}

fn main() {
    let rig = build_rig(sf_from_env());
    let db = rig.db(Generation::Clustered);
    let store = db.clustered_store().unwrap();
    let schema = db.schema().unwrap();
    let dict = db.dict();

    let props = [
        "lineitem_quantity",
        "lineitem_extendedprice",
        "lineitem_discount",
        "lineitem_shipdate",
        "lineitem_returnflag",
        "lineitem_shipmode",
    ];
    println!("== Ext-3: star cardinality estimation (q-error, lower is better) ==");
    println!(
        "{:<8} {:>10} {:>12} {:>12} | {:>10} {:>10}",
        "width", "true", "CS-est", "indep-est", "qerr-CS", "qerr-ind"
    );
    for width in 2..=props.len() {
        // Build the star query text.
        let mut body = String::new();
        for p in &props[..width] {
            body.push_str(&format!("?s <http://lod2.eu/schemas/rdfh#{p}> ?{p} .\n"));
        }
        let sparql = format!("SELECT ?s WHERE {{ {body} }}");
        let truth = db.query(&sparql).expect("query").len() as f64;

        let query = sordf_sparql::parse_sparql(&sparql, &dict).unwrap();
        let mut q = query.clone();
        let (stars, _) = stars_of(&mut q);

        // A fresh context bound to the clustered storage.
        let cx = ExecContext::new(
            db.buffer_pool(),
            &dict,
            StorageRef::Clustered {
                store: &store,
                schema: &schema,
            },
            ExecConfig {
                scheme: PlanScheme::RdfScanJoin,
                zonemaps: true,
                ..Default::default()
            },
        );
        let cs = estimate_star_cs(&cx, &stars[0], &[]).unwrap_or(0.0);
        let ind = estimate_star_independence(&cx, &stars[0], &[]);
        println!(
            "{:<8} {:>10.0} {:>12.1} {:>12.1} | {:>10.2} {:>10.2}",
            width,
            truth,
            cs,
            ind,
            q_error(cs, truth),
            q_error(ind, truth)
        );
    }
    println!("\n(CS estimates should sit near the truth; independence collapses");
    println!(" toward zero as the star widens — the paper's 'bad query plans'.)");
}
