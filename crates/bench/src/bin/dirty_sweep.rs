//! **Ext-4** — dirty-data sweep.
//!
//! §II-D: "In the near future, we will further test and develop our
//! self-organizing RDF algorithms on dirty data, such as web crawls, where
//! we expect the gain to be less, but still nonzero." We sweep the
//! irregularity knob of the web-crawl-like generator and compare the
//! Default and RDFscan plans on a star query, reporting coverage and the
//! remaining speedup.

use sordf::{Database, ExecConfig, Generation, PlanScheme, QueryRequest};
use sordf_datagen::{dirty, DirtyConfig};
use std::time::Instant;

fn main() {
    println!("== Ext-4: star query speedup on increasingly dirty data ==");
    println!(
        "{:<14} {:>9} {:>9} | {:>12} {:>12} {:>9}",
        "irregularity", "coverage", "classes", "default-ms", "rdfscan-ms", "speedup"
    );
    // A 4-prop star over class 0's properties.
    let q = r#"SELECT ?s ?a ?b WHERE {
        ?s <http://example.org/c0_p0> ?a .
        ?s <http://example.org/c0_p1> ?b .
        ?s <http://example.org/c0_p2> ?c .
        ?s <http://example.org/c0_p3> ?d .
    }"#;
    for irregularity in [0.0, 0.1, 0.2, 0.3, 0.5, 0.7] {
        let triples = dirty(&DirtyConfig::with_irregularity(irregularity, 8_000));
        let db = Database::in_temp_dir().expect("db");
        db.load_terms(&triples).expect("load");
        db.self_organize().expect("organize");
        let schema = db.schema().unwrap();
        let (coverage, n_classes) = (schema.coverage, schema.classes.len());

        let mut times = [0.0f64; 2];
        let mut rows = [0usize; 2];
        for (i, scheme) in [PlanScheme::Default, PlanScheme::RdfScanJoin]
            .iter()
            .enumerate()
        {
            let exec = ExecConfig {
                scheme: *scheme,
                zonemaps: true,
                ..Default::default()
            };
            let req = QueryRequest::sparql(q)
                .generation(Generation::Clustered)
                .config(exec);
            let _ = db.execute(&req).unwrap(); // warm
            let t0 = Instant::now();
            let rs = db.execute(&req).unwrap().results;
            times[i] = t0.elapsed().as_secs_f64() * 1e3;
            rows[i] = rs.len();
        }
        assert_eq!(rows[0], rows[1], "plan schemes must agree");
        println!(
            "{:<14.2} {:>8.1}% {:>9} | {:>12.2} {:>12.2} {:>8.2}x",
            irregularity,
            coverage * 100.0,
            n_classes,
            times[0],
            times[1],
            times[0] / times[1].max(1e-9)
        );
    }
}
