//! **Ext-1** — CS generalization ablation.
//!
//! §II-A motivates merging: "In contrast to the original CS algorithm which
//! created a different CS for each unique combination of attributes, we
//! allow attributes of kind 0..n (NULLABLE attributes)… This reduces the
//! number of CS's." This harness sweeps the dirty-data irregularity knob and
//! reports, for the exact Neumann-Moerkotte CSs vs. the generalized schema:
//! number of classes, coverage, and discovery time.

use sordf_datagen::{dirty, DirtyConfig};
use sordf_schema::SchemaConfig;
use sordf_storage::TripleSet;
use std::time::Instant;

fn main() {
    println!("== Ext-1: exact CSs vs generalized emergent schema ==");
    println!(
        "{:<14} {:>9} | {:>8} {:>9} | {:>8} {:>9} {:>9}",
        "irregularity", "triples", "exact-CS", "coverage", "merged", "coverage", "disc-ms"
    );
    for irregularity in [0.0, 0.1, 0.2, 0.3, 0.4, 0.6] {
        let triples = dirty(&DirtyConfig::with_irregularity(irregularity, 2_000));
        let mut ts = TripleSet::new();
        ts.extend_terms(&triples).unwrap();
        let spo = ts.sorted_spo();

        let exact = sordf_schema::discover(&spo, &ts.dict, &SchemaConfig::exact_cs());
        let t0 = Instant::now();
        let merged = sordf_schema::discover(&spo, &ts.dict, &SchemaConfig::default());
        let ms = t0.elapsed().as_secs_f64() * 1e3;

        println!(
            "{:<14.2} {:>9} | {:>8} {:>8.1}% | {:>8} {:>8.1}% {:>9.1}",
            irregularity,
            spo.len(),
            exact.classes.len(),
            exact.coverage * 100.0,
            merged.classes.len(),
            merged.coverage * 100.0,
            ms
        );
    }
    println!("\n(The paper expects high coverage — ~85% on real dirty data — with");
    println!(" far fewer classes after generalization; exact CSs explode with noise.)");
}
