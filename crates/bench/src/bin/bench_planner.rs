//! Cost-based planner benchmark: how good are the optimizer's choices on
//! chained-star (path-shaped) RDF-H queries?
//!
//! For a family of queries walking the lineitem → order → customer → nation
//! chain (including `/` sequence-path sugar and star-width variants), this
//! reports:
//!
//! * **q-error** — per query, the worst-step ratio between the optimizer's
//!   estimated and actual bound rows (`max(est/actual, actual/est)` over
//!   the plan's steps, via EXPLAIN ANALYZE),
//! * **plan quality** — the chosen plan's cost against the best cost over
//!   *all* star-order permutations (`explain_orders`); the acceptance bar
//!   is chosen ≤ 1.5× best on ≥ 90% of the family,
//! * **optimizer overhead** — mean wall-clock of a full re-optimization
//!   (parse + prepare + cost-based search) next to mean execution time,
//! * **plan-cache hit rate** — each query is run several times through the
//!   facade; steady state should be all hits.
//!
//! The host's `available_parallelism` is recorded as `host_cpus`.
//!
//! Usage:
//!   bench_planner [--sf F] [--out PATH] [--smoke]

use sordf::{Database, ExecConfig, PlanScheme};
use sordf_bench::cli::{render_object, time_loop, BenchArgs, BenchJson};
use sordf_rdfh::{generate, RdfhConfig};

const PREFIX: &str = "PREFIX rdfh: <http://lod2.eu/schemas/rdfh#>\n";

/// The chained-star family: progressively longer walks up the RDF-H
/// foreign-key chain, plus path-sugar and filtered variants.
fn family() -> Vec<(&'static str, String)> {
    let chain2 = format!(
        "{PREFIX}SELECT ?li ?od WHERE {{
  ?li rdfh:lineitem_orderkey ?o ; rdfh:lineitem_quantity ?q .
  ?o rdfh:order_orderdate ?od .
}}"
    );
    let chain3 = format!(
        "{PREFIX}SELECT ?li ?c WHERE {{
  ?li rdfh:lineitem_orderkey ?o ; rdfh:lineitem_extendedprice ?p .
  ?o rdfh:order_custkey ?c .
  ?c rdfh:customer_mktsegment ?seg .
}}"
    );
    let chain4 = format!(
        "{PREFIX}SELECT ?li ?nname WHERE {{
  ?li rdfh:lineitem_orderkey ?o ; rdfh:lineitem_quantity ?q .
  ?o rdfh:order_custkey ?c .
  ?c rdfh:customer_nationkey ?n .
  ?n rdfh:nation_name ?nname .
}}"
    );
    // The same 4-hop walk written with `/` sequence paths: the parser
    // desugars it into the chain above through fresh internal variables.
    let path4 = format!(
        "{PREFIX}SELECT ?li ?nname WHERE {{
  ?li rdfh:lineitem_orderkey/rdfh:order_custkey/rdfh:customer_nationkey ?n .
  ?n rdfh:nation_name ?nname .
}}"
    );
    let chain3_filter = format!(
        "{PREFIX}SELECT ?li ?od WHERE {{
  ?li rdfh:lineitem_orderkey ?o ; rdfh:lineitem_quantity ?q ;
      rdfh:lineitem_shipdate ?sd .
  ?o rdfh:order_orderdate ?od .
  FILTER(?sd >= \"1995-01-01\"^^xsd:date)
}}"
    );
    let wide_star = format!(
        "{PREFIX}SELECT ?li WHERE {{
  ?li rdfh:lineitem_orderkey ?o ; rdfh:lineitem_quantity ?q ;
      rdfh:lineitem_extendedprice ?p ; rdfh:lineitem_discount ?d .
  ?o rdfh:order_custkey ?c ; rdfh:order_orderdate ?od .
  ?c rdfh:customer_nationkey ?n .
}}"
    );
    vec![
        ("chain2", chain2),
        ("chain3", chain3),
        ("chain4", chain4),
        ("path4", path4),
        ("chain3_filter", chain3_filter),
        ("wide_star", wide_star),
    ]
}

struct Row {
    name: &'static str,
    n_stars: usize,
    qerror: f64,
    chosen_cost: f64,
    best_cost: f64,
    n_orders: usize,
    opt_ms: f64,
    exec_ms: f64,
}

fn main() {
    let args = BenchArgs::parse("BENCH_planner.json");
    let data = generate(&RdfhConfig::new(args.sf));
    let mut db = Database::in_temp_dir().unwrap();
    db.load_terms(&data.triples).unwrap();
    db.self_organize().unwrap();
    db.set_config(ExecConfig {
        scheme: PlanScheme::RdfScanJoin,
        zonemaps: true,
        ..Default::default()
    });

    let mut rows = Vec::new();
    for (name, sparql) in family() {
        // Estimation quality: worst-step q-error from EXPLAIN ANALYZE.
        let (info, _rs) = db.explain_analyze(&sparql).expect(name);
        let mut qerror = 1.0f64;
        for step in &info.steps {
            let actual = step.actual_rows.unwrap_or(0).max(1) as f64;
            let est = step.est_rows.max(1.0);
            qerror = qerror.max((est / actual).max(actual / est));
        }

        // Plan quality: chosen cost vs the best of all star orders.
        let orders = db.explain_orders(&sparql).expect(name);
        let best_cost = orders.iter().map(|(_, c)| *c).fold(f64::INFINITY, f64::min);
        let chosen_cost = info.total_cost;

        // Optimizer overhead (full re-optimization) vs execution time.
        let opt_qps = time_loop(args.min_secs.min(0.5), args.min_iters, || {
            let _ = db.explain(&sparql).expect(name);
        });
        let exec_qps = time_loop(args.min_secs.min(0.5), args.min_iters, || {
            let _ = db.query(&sparql).expect(name);
        });

        rows.push(Row {
            name,
            n_stars: info.n_stars,
            qerror,
            chosen_cost,
            best_cost,
            n_orders: orders.len(),
            opt_ms: 1000.0 / opt_qps.max(1e-9),
            exec_ms: 1000.0 / exec_qps.max(1e-9),
        });
    }

    // Plan-cache steady state over the whole family.
    let before = db.plan_cache_stats();
    for _ in 0..5 {
        for (name, sparql) in family() {
            let _ = db.query(&sparql).expect(name);
        }
    }
    let after = db.plan_cache_stats();
    let lookups = (after.hits - before.hits) + (after.misses - before.misses);
    let hit_rate = (after.hits - before.hits) as f64 / (lookups.max(1)) as f64;

    let within = rows
        .iter()
        .filter(|r| r.chosen_cost <= r.best_cost * 1.5)
        .count();
    let frac_within = within as f64 / rows.len() as f64;
    let mut qerrors: Vec<f64> = rows.iter().map(|r| r.qerror).collect();
    qerrors.sort_by(|a, b| a.total_cmp(b));
    let qerr_median = qerrors[qerrors.len() / 2];
    let qerr_max = *qerrors.last().unwrap();

    let mut j = BenchJson::new("planner", args.sf);
    j.int("n_queries", rows.len() as u64);
    j.num("frac_within_1_5x_best", frac_within, 4);
    j.num("qerror_median", qerr_median, 3);
    j.num("qerror_max", qerr_max, 3);
    j.num("plan_cache_hit_rate", hit_rate, 4);
    j.int("plan_cache_entries", after.entries);
    j.raw(
        "queries",
        render_object(rows.iter().map(|r| {
            (
                r.name,
                format!(
                    "{{ \"n_stars\": {}, \"qerror\": {:.3}, \"chosen_cost\": {:.1}, \
                     \"best_cost\": {:.1}, \"cost_ratio\": {:.4}, \"n_orders\": {}, \
                     \"optimize_ms\": {:.4}, \"exec_ms\": {:.4} }}",
                    r.n_stars,
                    r.qerror,
                    r.chosen_cost,
                    r.best_cost,
                    r.chosen_cost / r.best_cost.max(1e-9),
                    r.n_orders,
                    r.opt_ms,
                    r.exec_ms
                ),
            )
        })),
    );
    j.write(&args.out_path);

    assert!(
        frac_within >= 0.9,
        "optimizer picked a plan > 1.5x the best order on {}/{} queries",
        rows.len() - within,
        rows.len()
    );
}
