//! Closed-loop HTTP serving benchmark: N client threads, each with one
//! keep-alive connection, each sending the next request only after reading
//! the previous response. Reports per-request latency percentiles
//! (p50/p95/p99) and aggregate throughput for several client counts, plus a
//! correctness differential: every benchmarked query's TSV response is
//! compared row-for-row against direct library execution before timing, and
//! the (required-zero) diff count is recorded in the artifact.
//!
//! Usage:
//!   bench_server [--sf F] [--out PATH] [--smoke]

use sordf::{Database, QueryRequest};
use sordf_bench::cli::{render_object, BenchArgs, BenchJson};
use sordf_rdfh::{generate, RdfhConfig};
use sordf_server::{Server, ServerConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const NS: &str = "http://lod2.eu/schemas/rdfh#";

fn queries() -> Vec<(&'static str, String)> {
    vec![
        (
            "customers",
            format!("PREFIX rdfh: <{NS}>\nSELECT ?n WHERE {{ ?c rdfh:customer_name ?n }}"),
        ),
        (
            "q6_revenue",
            format!(
                r#"PREFIX rdfh: <{NS}>
SELECT (SUM(?price * ?disc) AS ?rev) WHERE {{
  ?li rdfh:lineitem_shipdate ?d .
  ?li rdfh:lineitem_extendedprice ?price .
  ?li rdfh:lineitem_discount ?disc .
  FILTER(?d >= "1994-01-01"^^xsd:date && ?d < "1995-01-01"^^xsd:date)
}}"#
            ),
        ),
    ]
}

// ---- minimal blocking HTTP client -------------------------------------------

fn urlencode(s: &str) -> String {
    let mut out = String::new();
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            b' ' => out.push('+'),
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// One request/response exchange on a persistent connection; returns the
/// (status, body).
fn exchange(stream: &mut TcpStream, target: &str) -> (u16, String) {
    let head = format!(
        "GET {target} HTTP/1.1\r\nHost: bench\r\nAccept: text/tab-separated-values\r\n\r\n"
    );
    stream.write_all(head.as_bytes()).expect("request write");
    let mut buf = Vec::new();
    let head_end = loop {
        if let Some(i) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break i;
        }
        let mut chunk = [0u8; 8192];
        let n = stream.read(&mut chunk).expect("response read");
        assert!(n > 0, "server closed mid-response");
        buf.extend_from_slice(&chunk[..n]);
    };
    let head_text = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let status: u16 = head_text
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let content_len: usize = head_text
        .lines()
        .find_map(|l| {
            let (n, v) = l.split_once(':')?;
            n.eq_ignore_ascii_case("content-length")
                .then(|| v.trim().parse().ok())?
        })
        .unwrap_or(0);
    let body_start = head_end + 4;
    while buf.len() < body_start + content_len {
        let mut chunk = [0u8; 8192];
        let n = stream.read(&mut chunk).expect("response read");
        assert!(n > 0, "server closed mid-body");
        buf.extend_from_slice(&chunk[..n]);
    }
    (
        status,
        String::from_utf8_lossy(&buf[body_start..body_start + content_len]).into_owned(),
    )
}

/// Render the reference answer the way the TSV endpoint does.
fn reference_tsv(db: &Database, sparql: &str) -> String {
    let resp = db
        .execute(&QueryRequest::sparql(sparql))
        .expect("reference query");
    let mut out = resp.results.columns.join("\t");
    out.push('\n');
    for row in resp.results.render(&resp.pin) {
        out.push_str(&row.join("\t"));
        out.push('\n');
    }
    out
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted_ms.len() - 1) as f64).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

struct LoopResult {
    requests: u64,
    qps: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
}

/// Run the closed loop at `n_clients` for at least `min_secs` /
/// `min_iters` requests per client; every response is checked against its
/// query's reference TSV (a mismatch panics the client thread).
fn closed_loop(
    addr: &str,
    targets: &[(String, String)], // (urlencoded target, expected body)
    n_clients: usize,
    min_secs: f64,
    min_iters: u64,
) -> LoopResult {
    // ordering: Relaxed — benchmark stop flag, no data published through it.
    let stop = AtomicBool::new(false);
    let t0 = Instant::now();
    let mut latencies: Vec<f64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..n_clients)
            .map(|ci| {
                let stop = &stop;
                s.spawn(move || {
                    let mut stream = TcpStream::connect(addr).expect("connect");
                    stream.set_nodelay(true).expect("nodelay");
                    let mut samples = Vec::new();
                    let mut i = ci; // stagger query mix across clients
                    while !stop.load(Ordering::Relaxed) || samples.len() < min_iters as usize {
                        let (target, expected) = &targets[i % targets.len()];
                        i += 1;
                        let q0 = Instant::now();
                        let (status, body) = exchange(&mut stream, target);
                        samples.push(q0.elapsed().as_secs_f64() * 1e3);
                        assert_eq!(status, 200, "{body}");
                        assert_eq!(&body, expected, "response diverged from library");
                    }
                    samples
                })
            })
            .collect();
        std::thread::sleep(Duration::from_secs_f64(min_secs));
        stop.store(true, Ordering::Relaxed);
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let elapsed = t0.elapsed().as_secs_f64();
    let requests = latencies.len() as u64;
    latencies.sort_by(|a, b| a.total_cmp(b));
    LoopResult {
        requests,
        qps: requests as f64 / elapsed,
        p50_ms: percentile(&latencies, 50.0),
        p95_ms: percentile(&latencies, 95.0),
        p99_ms: percentile(&latencies, 99.0),
    }
}

fn main() {
    let args = BenchArgs::parse("BENCH_server.json");
    let client_counts: &[usize] = if args.smoke { &[1, 2] } else { &[1, 2, 4] };

    let data = generate(&RdfhConfig::new(args.sf));
    let db = Database::in_temp_dir().expect("temp db");
    db.load_terms(&data.triples).expect("load");
    db.self_organize().expect("organize");
    let n_triples = db.n_triples();
    let db = Arc::new(db);

    let max_clients = client_counts.iter().copied().max().unwrap_or(1);
    let server = Server::bind(
        Arc::clone(&db),
        ServerConfig {
            workers: max_clients + 2,
            max_in_flight: max_clients + 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr().expect("addr").to_string();

    // Correctness differential: the wire answer must equal the library
    // answer byte-for-byte, per query, before anything is timed.
    let mut diffs = 0u64;
    let targets: Vec<(String, String)> = queries()
        .iter()
        .map(|(name, q)| {
            let expected = reference_tsv(&db, q);
            let target = format!("/query?query={}", urlencode(q));
            let (status, body) =
                exchange(&mut TcpStream::connect(&addr).expect("connect"), &target);
            if status != 200 || body != expected {
                eprintln!("DIFF on {name}: status {status}");
                diffs += 1;
            }
            (target, expected)
        })
        .collect();
    assert_eq!(diffs, 0, "HTTP responses diverged from direct execution");

    let mut results: Vec<(String, LoopResult)> = Vec::new();
    for &n in client_counts {
        let r = closed_loop(&addr, &targets, n, args.min_secs, args.min_iters);
        println!(
            "clients={n:<2} requests={:<6} qps={:<8.1} p50={:.2}ms p95={:.2}ms p99={:.2}ms",
            r.requests, r.qps, r.p50_ms, r.p95_ms, r.p99_ms
        );
        results.push((format!("clients{n}"), r));
    }

    let mut j = BenchJson::new("server", args.sf);
    j.int("n_triples", n_triples as u64);
    j.int("diffs", diffs);
    j.raw(
        "closed_loop",
        render_object(results.iter().map(|(name, r)| {
            (
                name.as_str(),
                format!(
                    "{{ \"requests\": {}, \"qps\": {:.2}, \"p50_ms\": {:.3}, \
                     \"p95_ms\": {:.3}, \"p99_ms\": {:.3} }}",
                    r.requests, r.qps, r.p50_ms, r.p95_ms, r.p99_ms
                ),
            )
        })),
    );
    j.write(&args.out_path);

    server.shutdown();
}
