//! Vectorized-execution benchmark: hot scan paths with pool-counter evidence.
//!
//! Measures the engine's star-scan and zone-map scan paths (the workloads of
//! the `starjoin` and `zonemap` criterion benches) and reports, per scenario:
//! queries/sec, rows scanned/sec, and buffer-pool page requests (`hits` +
//! `misses`, i.e. `BufferPool::get`/`pin` calls) per query. The pool counters
//! are the direct evidence for page-at-a-time execution: value-at-a-time
//! code performs one pool request per probed value, pinned-slice code one
//! per touched page.
//!
//! Usage:
//!   bench_vectorized [--sf F] [--out PATH] [--baseline PATH] [--smoke]
//!
//! `--baseline` merges a previously recorded run (same format) into the
//! output and computes per-scenario speedups — used to track the perf
//! trajectory across PRs (`BENCH_baseline.json` holds the pre-vectorization
//! numbers).

use sordf::{ExecConfig, Generation, PlanScheme};
use sordf_bench::{build_rig, Rig};
use std::fmt::Write as _;
use std::time::Instant;

struct Scenario {
    name: &'static str,
    query: String,
    generation: Generation,
    exec: ExecConfig,
}

#[derive(Debug, Clone)]
struct Sample {
    name: &'static str,
    qps: f64,
    rows_scanned_per_sec: f64,
    pool_gets_per_query: u64,
    rows_scanned_per_query: u64,
    result_rows: usize,
    iters: u64,
}

fn star_query(width: usize) -> String {
    let props = [
        "lineitem_quantity",
        "lineitem_extendedprice",
        "lineitem_discount",
        "lineitem_tax",
        "lineitem_shipmode",
        "lineitem_returnflag",
    ];
    let mut body = String::new();
    for p in &props[..width] {
        let _ = writeln!(body, "?s <http://lod2.eu/schemas/rdfh#{p}> ?o_{p} .");
    }
    format!("SELECT ?s WHERE {{ {body} }}")
}

fn q6_query(months: u32) -> String {
    let end_year = 1994 + months / 12;
    let end_month = months % 12 + 1;
    format!(
        r#"PREFIX rdfh: <http://lod2.eu/schemas/rdfh#>
SELECT (SUM(?price * ?disc) AS ?rev) WHERE {{
  ?li rdfh:lineitem_shipdate ?d .
  ?li rdfh:lineitem_extendedprice ?price .
  ?li rdfh:lineitem_discount ?disc .
  FILTER(?d >= "1994-01-01"^^xsd:date && ?d < "{end_year}-{end_month:02}-01"^^xsd:date)
}}"#
    )
}

fn scenarios() -> Vec<Scenario> {
    let rdfscan = ExecConfig { scheme: PlanScheme::RdfScanJoin, zonemaps: true };
    let default = ExecConfig { scheme: PlanScheme::Default, zonemaps: true };
    vec![
        Scenario {
            name: "starjoin6_rdfscan",
            query: star_query(6),
            generation: Generation::Clustered,
            exec: rdfscan,
        },
        Scenario {
            name: "starjoin6_default",
            query: star_query(6),
            generation: Generation::Clustered,
            exec: default,
        },
        Scenario {
            name: "starjoin4_sparse",
            query: star_query(4),
            generation: Generation::CsParseOrder,
            exec: rdfscan,
        },
        Scenario {
            name: "zonemap_q6_3mo",
            query: q6_query(3),
            generation: Generation::Clustered,
            exec: rdfscan,
        },
        Scenario {
            name: "zonemap_q6_36mo",
            query: q6_query(36),
            generation: Generation::Clustered,
            exec: rdfscan,
        },
    ]
}

fn run_scenario(rig: &Rig, sc: &Scenario, min_secs: f64, min_iters: u64) -> Sample {
    let db = rig.db(sc.generation);
    // Warm the pool and code paths; steady-state throughput is the metric.
    let warm = db.query_traced(&sc.query, sc.generation, sc.exec).expect("warmup");
    let result_rows = warm.results.len();

    let mut iters = 0u64;
    let mut rows_scanned = 0u64;
    let mut pool_gets = 0u64;
    let t0 = Instant::now();
    loop {
        let traced = db.query_traced(&sc.query, sc.generation, sc.exec).expect("query");
        rows_scanned += traced.stats.rows_scanned;
        pool_gets += traced.pool.hits + traced.pool.misses;
        iters += 1;
        if iters >= min_iters && t0.elapsed().as_secs_f64() >= min_secs {
            break;
        }
    }
    let secs = t0.elapsed().as_secs_f64();
    Sample {
        name: sc.name,
        qps: iters as f64 / secs,
        rows_scanned_per_sec: rows_scanned as f64 / secs,
        pool_gets_per_query: pool_gets / iters,
        rows_scanned_per_query: rows_scanned / iters,
        result_rows,
        iters,
    }
}

fn json_of(samples: &[Sample], sf: f64, n_triples: usize, baseline_json: Option<&str>) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"vectorized\",");
    let _ = writeln!(out, "  \"sf\": {sf},");
    let _ = writeln!(out, "  \"n_triples\": {n_triples},");
    out.push_str("  \"scenarios\": {\n");
    for (i, s) in samples.iter().enumerate() {
        let _ = writeln!(
            out,
            "    \"{}\": {{ \"qps\": {:.2}, \"rows_scanned_per_sec\": {:.0}, \
             \"pool_gets_per_query\": {}, \"rows_scanned_per_query\": {}, \
             \"result_rows\": {}, \"iters\": {} }}{}",
            s.name,
            s.qps,
            s.rows_scanned_per_sec,
            s.pool_gets_per_query,
            s.rows_scanned_per_query,
            s.result_rows,
            s.iters,
            if i + 1 < samples.len() { "," } else { "" }
        );
    }
    out.push_str("  }");
    if let Some(base) = baseline_json {
        out.push_str(",\n  \"speedup_vs_baseline\": {\n");
        let speedups: Vec<(String, f64, f64)> = samples
            .iter()
            .filter_map(|s| {
                extract_scenario_field(base, s.name, "qps")
                    .map(|b| (s.name.to_string(), s.qps / b, b))
            })
            .collect();
        for (i, (name, ratio, base_qps)) in speedups.iter().enumerate() {
            let _ = writeln!(
                out,
                "    \"{name}\": {{ \"speedup\": {ratio:.2}, \"baseline_qps\": {base_qps:.2} }}{}",
                if i + 1 < speedups.len() { "," } else { "" }
            );
        }
        out.push_str("  },\n  \"baseline\": ");
        out.push_str(base.trim_end());
        out.push('\n');
    } else {
        out.push('\n');
    }
    out.push_str("}\n");
    out
}

/// Pull `"field": <number>` out of a scenario object in our own JSON format.
fn extract_scenario_field(json: &str, scenario: &str, field: &str) -> Option<f64> {
    let start = json.find(&format!("\"{scenario}\""))?;
    let obj = &json[start..start + json[start..].find('}')?];
    let fstart = obj.find(&format!("\"{field}\""))?;
    let after = obj[fstart..].split_once(':')?.1;
    let num: String = after
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e')
        .collect();
    num.parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag_val = |name: &str| -> Option<String> {
        args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
    };
    let smoke = args.iter().any(|a| a == "--smoke");
    let sf = flag_val("--sf")
        .and_then(|s| s.parse().ok())
        .unwrap_or(if smoke { 0.001 } else { 0.005 });
    let out_path = flag_val("--out").unwrap_or_else(|| "BENCH_vectorized.json".to_string());
    let baseline = flag_val("--baseline").and_then(|p| std::fs::read_to_string(p).ok());
    let (min_secs, min_iters) = if smoke { (0.1, 2) } else { (1.5, 10) };

    let rig = build_rig(sf);
    let samples: Vec<Sample> =
        scenarios().iter().map(|sc| run_scenario(&rig, sc, min_secs, min_iters)).collect();

    for s in &samples {
        println!(
            "{:<20} {:>9.2} q/s  {:>12.0} rows/s  {:>8} pool gets/q  {:>8} rows scanned/q  {:>6} result rows",
            s.name, s.qps, s.rows_scanned_per_sec, s.pool_gets_per_query,
            s.rows_scanned_per_query, s.result_rows
        );
    }

    let json = json_of(&samples, sf, rig.n_triples, baseline.as_deref());
    std::fs::write(&out_path, &json).expect("write bench json");
    println!("wrote {out_path}");
}
