//! Vectorized-execution benchmark: hot scan paths with pool-counter evidence.
//!
//! Measures the engine's star-scan and zone-map scan paths (the workloads of
//! the `starjoin` and `zonemap` criterion benches) and reports, per scenario:
//! queries/sec, rows scanned/sec, and buffer-pool page requests (`hits` +
//! `misses`, i.e. `BufferPool::get`/`pin` calls) per query. The pool counters
//! are the direct evidence for page-at-a-time execution: value-at-a-time
//! code performs one pool request per probed value, pinned-slice code one
//! per touched page.
//!
//! Usage:
//!   bench_vectorized [--sf F] [--out PATH] [--baseline PATH] [--smoke]
//!
//! `--baseline` merges a previously recorded run (same format) into the
//! output and computes per-scenario speedups — used to track the perf
//! trajectory across PRs (`BENCH_baseline.json` holds the pre-vectorization
//! numbers).

use sordf::QueryRequest;
use sordf_bench::cli::{extract_scenario_field, render_object, BenchArgs, BenchJson};
use sordf_bench::scenarios::{self, Scenario};
use sordf_bench::{build_rig, Rig};
use std::time::Instant;

#[derive(Debug, Clone)]
struct Sample {
    name: &'static str,
    qps: f64,
    rows_scanned_per_sec: f64,
    pool_gets_per_query: u64,
    rows_scanned_per_query: u64,
    result_rows: usize,
    iters: u64,
}

fn run_scenario(rig: &Rig, sc: &Scenario, min_secs: f64, min_iters: u64) -> Sample {
    let db = rig.db(sc.generation);
    let req = QueryRequest::sparql(&sc.query)
        .generation(sc.generation)
        .config(sc.exec)
        .traced(true);
    // Warm the pool and code paths; steady-state throughput is the metric.
    let warm = db.execute(&req).expect("warmup");
    let result_rows = warm.results.len();

    let mut iters = 0u64;
    let mut rows_scanned = 0u64;
    let mut pool_gets = 0u64;
    let t0 = Instant::now();
    loop {
        let traced = db.execute(&req).expect("query");
        let (stats, pool) = (traced.stats.expect("traced"), traced.pool.expect("traced"));
        rows_scanned += stats.rows_scanned;
        pool_gets += pool.hits + pool.misses;
        iters += 1;
        if iters >= min_iters && t0.elapsed().as_secs_f64() >= min_secs {
            break;
        }
    }
    let secs = t0.elapsed().as_secs_f64();
    Sample {
        name: sc.name,
        qps: iters as f64 / secs,
        rows_scanned_per_sec: rows_scanned as f64 / secs,
        pool_gets_per_query: pool_gets / iters,
        rows_scanned_per_query: rows_scanned / iters,
        result_rows,
        iters,
    }
}

fn json_of(samples: &[Sample], sf: f64, n_triples: usize, baseline_json: Option<&str>) -> String {
    let mut j = BenchJson::new("vectorized", sf);
    j.int("n_triples", n_triples as u64);
    j.raw(
        "scenarios",
        render_object(samples.iter().map(|s| {
            (
                s.name,
                format!(
                    "{{ \"qps\": {:.2}, \"rows_scanned_per_sec\": {:.0}, \
                     \"pool_gets_per_query\": {}, \"rows_scanned_per_query\": {}, \
                     \"result_rows\": {}, \"iters\": {} }}",
                    s.qps,
                    s.rows_scanned_per_sec,
                    s.pool_gets_per_query,
                    s.rows_scanned_per_query,
                    s.result_rows,
                    s.iters
                ),
            )
        })),
    );
    if let Some(base) = baseline_json {
        j.raw(
            "speedup_vs_baseline",
            render_object(samples.iter().filter_map(|s| {
                extract_scenario_field(base, s.name, "qps").map(|b| {
                    (
                        s.name,
                        format!(
                            "{{ \"speedup\": {:.2}, \"baseline_qps\": {b:.2} }}",
                            s.qps / b
                        ),
                    )
                })
            })),
        );
        j.raw("baseline", base.trim_end().to_string());
    }
    j.render()
}

fn main() {
    let args = BenchArgs::parse("BENCH_vectorized.json");

    let rig = build_rig(args.sf);
    let samples: Vec<Sample> = scenarios::all()
        .iter()
        .map(|sc| run_scenario(&rig, sc, args.min_secs, args.min_iters))
        .collect();

    for s in &samples {
        println!(
            "{:<20} {:>9.2} q/s  {:>12.0} rows/s  {:>8} pool gets/q  {:>8} rows scanned/q  {:>6} result rows",
            s.name, s.qps, s.rows_scanned_per_sec, s.pool_gets_per_query,
            s.rows_scanned_per_query, s.result_rows
        );
    }

    let json = json_of(&samples, args.sf, rig.n_triples, args.baseline.as_deref());
    std::fs::write(&args.out_path, &json).expect("write bench json");
    println!("wrote {}", args.out_path);
}
