//! **Fig. 3** — subject clustering: storage layout before/after.
//!
//! The figure shows a loaded PSO triple table being reorganized into CS
//! column segments plus an irregular remainder. This harness makes the
//! figure quantitative: for each discovered class it reports the segment
//! layout, and it measures the *locality* effect clustering has on a
//! selective one-class scan (pages touched, cold time) on ParseOrder vs
//! Clustered storage.

use sordf::{ExecConfig, Generation, PlanScheme, QueryRequest};
use sordf_bench::{build_rig, page_latency_from_env, sf_from_env};

fn main() {
    let sf = sf_from_env();
    let page_ns = page_latency_from_env();
    let rig = build_rig(sf);

    println!("== Fig. 3: subject clustering ==");
    let schema = rig.clustered.schema().expect("schema");
    let report = rig.clustered.reorg_report().expect("report");
    println!(
        "{} subjects clustered into {} classes; {} string literals sorted; coverage {:.1}%",
        report.n_subjects_clustered,
        schema.classes.len(),
        report.n_strings_sorted,
        schema.coverage * 100.0
    );
    let store = rig.clustered.clustered_store().expect("store");
    println!("\nclass segments (dense subject-OID ranges):");
    for class in &schema.classes {
        let seg = store.segment(class.id);
        let range = seg.dense_range().expect("dense");
        println!(
            "  {:<12} rows {:>8}  S-OIDs [{:>8}, {:>8})  cols {:>2}  side-tables {}",
            class.name,
            seg.n,
            range.start,
            range.end,
            seg.columns.len(),
            seg.multi.len()
        );
    }
    println!("irregular remainder: {} triples", store.irregular.len());

    // Locality experiment: a selective date-range star over lineitem.
    let q = r#"
PREFIX rdfh: <http://lod2.eu/schemas/rdfh#>
SELECT ?li ?price WHERE {
  ?li rdfh:lineitem_shipdate ?d .
  ?li rdfh:lineitem_extendedprice ?price .
  ?li rdfh:lineitem_quantity ?q .
  FILTER(?d >= "1995-06-01"^^xsd:date && ?d < "1995-07-01"^^xsd:date)
}"#;
    println!("\nselective star scan (one month of shipdate), RDFscan plan:");
    for (label, generation) in [
        ("ParseOrder (sparse CS tables)", Generation::CsParseOrder),
        ("Clustered", Generation::Clustered),
    ] {
        let db = rig.db(generation);
        let exec = ExecConfig {
            scheme: PlanScheme::RdfScanJoin,
            zonemaps: true,
            ..Default::default()
        };
        db.drop_cache();
        db.set_read_latency_ns(page_ns);
        let t0 = std::time::Instant::now();
        let traced = db
            .execute(
                &QueryRequest::sparql(q)
                    .generation(generation)
                    .config(exec)
                    .traced(true),
            )
            .expect("query");
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        db.set_read_latency_ns(0);
        println!(
            "  {label:<30} cold {ms:>9.2} ms  pages {:>6}  rows {:>6}",
            traced.pool.expect("traced").misses,
            traced.results.len()
        );
    }
}
