//! Update-path benchmark: the cost of being a *living* store.
//!
//! The RDF-H triples are split by subject into an 80% base and a 20% delta
//! pool. The base is bulk-loaded and self-organized; the delta pool is then
//! inserted through `Database::insert_terms` in batches, pausing at 1%, 5%
//! and 20% (of base size) to measure query throughput over the merged
//! (base + delta) store. Per run this reports:
//!
//! * `insert_tps` — delta write throughput (triples/sec into the sorted
//!   runs, including incremental CS routing),
//! * per delta level: `starjoin4_qps` / `q6_qps` — RDFscan star and
//!   zone-map aggregation throughput at 0/1/5/20% pending delta, showing
//!   how much the merged-scan exception paths cost before a reorg,
//! * `reorg`: wall-clock cost of `maybe_reorganize` at the 20% level, the
//!   irregular-triple ratio before/after, and the incremental-assigner
//!   routing counts,
//! * `post_reorg` query throughput (should recover the 0%-delta numbers).
//!
//! Before timing, the 20%-delta results are checked canonically identical
//! to a fresh bulk load of base + delta (sequential and 4-worker parallel) —
//! the same differential contract `tests/updates_differential.rs` enforces.
//!
//! The host's `available_parallelism` is recorded as `host_cpus`.
//!
//! Usage:
//!   bench_updates [--sf F] [--out PATH] [--smoke]

use sordf::{Database, ExecConfig, Generation, ParallelConfig, PlanScheme, ReorgPolicy};
use sordf_model::TermTriple;
use sordf_rdfh::{generate, RdfhConfig};
use std::fmt::Write as _;
use std::time::Instant;

fn star_query(width: usize) -> String {
    let props = [
        "lineitem_quantity",
        "lineitem_extendedprice",
        "lineitem_discount",
        "lineitem_tax",
    ];
    let mut body = String::new();
    for p in &props[..width] {
        let _ = writeln!(body, "?s <http://lod2.eu/schemas/rdfh#{p}> ?o_{p} .");
    }
    format!("SELECT ?s WHERE {{ {body} }}")
}

fn q6_query() -> String {
    r#"PREFIX rdfh: <http://lod2.eu/schemas/rdfh#>
SELECT (SUM(?price * ?disc) AS ?rev) WHERE {
  ?li rdfh:lineitem_shipdate ?d .
  ?li rdfh:lineitem_extendedprice ?price .
  ?li rdfh:lineitem_discount ?disc .
  FILTER(?d >= "1994-01-01"^^xsd:date && ?d < "1997-01-01"^^xsd:date)
}"#
    .to_string()
}

/// Deterministic subject bucketing (FNV-1a over the subject's debug form).
fn subject_bucket(t: &TermTriple, buckets: u64) -> u64 {
    let key = format!("{:?}", t.s);
    let mut h: u64 = 0xcbf29ce484222325;
    for b in key.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h % buckets
}

fn time_loop(min_secs: f64, min_iters: u64, mut body: impl FnMut()) -> f64 {
    let mut iters = 0u64;
    let t0 = Instant::now();
    loop {
        body();
        iters += 1;
        if iters >= min_iters && t0.elapsed().as_secs_f64() >= min_secs {
            break;
        }
    }
    iters as f64 / t0.elapsed().as_secs_f64()
}

#[derive(Debug, Clone)]
struct Level {
    label: &'static str,
    delta_triples: usize,
    starjoin4_qps: f64,
    q6_qps: f64,
}

fn measure_level(
    db: &Database,
    label: &'static str,
    delta_triples: usize,
    min_secs: f64,
    min_iters: u64,
) -> Level {
    let exec = ExecConfig { scheme: PlanScheme::RdfScanJoin, zonemaps: true };
    let star = star_query(4);
    let q6 = q6_query();
    let starjoin4_qps = time_loop(min_secs, min_iters, || {
        let _ = db.query_with(&star, Generation::Clustered, exec).expect("star");
    });
    let q6_qps = time_loop(min_secs, min_iters, || {
        let _ = db.query_with(&q6, Generation::Clustered, exec).expect("q6");
    });
    Level { label, delta_triples, starjoin4_qps, q6_qps }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag_val = |name: &str| -> Option<String> {
        args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
    };
    let smoke = args.iter().any(|a| a == "--smoke");
    let sf = flag_val("--sf")
        .and_then(|s| s.parse().ok())
        .unwrap_or(if smoke { 0.001 } else { 0.005 });
    let out_path = flag_val("--out").unwrap_or_else(|| "BENCH_updates.json".to_string());
    let (min_secs, min_iters) = if smoke { (0.1, 2) } else { (1.5, 10) };

    let data = generate(&RdfhConfig::new(sf));
    let (mut base, mut pool) = (Vec::new(), Vec::new());
    for t in &data.triples {
        if subject_bucket(t, 5) == 0 {
            pool.push(t.clone());
        } else {
            base.push(t.clone());
        }
    }

    let mut db = Database::in_temp_dir().unwrap();
    db.load_terms(&base).unwrap();
    db.self_organize().unwrap();
    let n_base = base.len();

    // Delta levels as fractions of the base size; the 20% pool bounds them.
    let levels: &[(&'static str, f64)] =
        &[("delta_0pct", 0.0), ("delta_1pct", 0.01), ("delta_5pct", 0.05), ("delta_20pct", 0.20)];
    let mut samples: Vec<Level> = Vec::new();
    let mut inserted = 0usize;
    let mut insert_secs = 0f64;
    for &(label, frac) in levels {
        let target = (((n_base as f64) * frac) as usize).min(pool.len());
        while inserted < target {
            let batch_end = (inserted + 512).min(target);
            let t0 = Instant::now();
            db.insert_terms(&pool[inserted..batch_end]).expect("insert");
            insert_secs += t0.elapsed().as_secs_f64();
            inserted = batch_end;
        }
        samples.push(measure_level(&db, label, inserted, min_secs, min_iters));
        println!(
            "{:<12} delta {:>7} triples  starjoin4 {:>8.1} q/s  q6 {:>8.1} q/s",
            label,
            inserted,
            samples.last().unwrap().starjoin4_qps,
            samples.last().unwrap().q6_qps
        );
    }
    let insert_tps = if insert_secs > 0.0 { inserted as f64 / insert_secs } else { 0.0 };

    // Differential check at the deepest delta level: canonical equality
    // with a fresh bulk load of the same logical set, sequential + parallel.
    let mut reference = Database::in_temp_dir().unwrap();
    reference.load_terms(&base).unwrap();
    reference.load_terms(&pool[..inserted]).unwrap();
    reference.self_organize().unwrap();
    let exec = ExecConfig { scheme: PlanScheme::RdfScanJoin, zonemaps: true };
    let par = ParallelConfig::with_workers(4);
    for q in [star_query(4), q6_query()] {
        let want = reference
            .query_with(&q, Generation::Clustered, exec)
            .expect("reference")
            .canonical(reference.dict());
        let seq = db.query_with(&q, Generation::Clustered, exec).expect("live");
        assert_eq!(seq.canonical(db.dict()), want, "live store diverges from bulk load");
        let parallel = db
            .query_traced_parallel(&q, Generation::Clustered, exec, &par)
            .expect("live parallel");
        assert_eq!(parallel.results.canonical(db.dict()), want, "parallel diverges");
    }

    // Adaptive reorganization cost at the 20% level.
    let drift = db.drift_stats();
    let irr_before = drift.irregular_ratio();
    let t0 = Instant::now();
    let outcome = db.maybe_reorganize(&ReorgPolicy::default()).expect("reorg");
    let reorg_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert!(outcome.fired, "a 20% delta must trip the default policy");
    let irr_after = outcome.irregular_ratio_after.unwrap_or(0.0);

    let post = measure_level(&db, "post_reorg", 0, min_secs, min_iters);
    println!(
        "{:<12} reorg {:>7.1} ms        starjoin4 {:>8.1} q/s  q6 {:>8.1} q/s",
        post.label, reorg_ms, post.starjoin4_qps, post.q6_qps
    );
    samples.push(post);

    let host_cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"updates\",");
    let _ = writeln!(json, "  \"sf\": {sf},");
    let _ = writeln!(json, "  \"host_cpus\": {host_cpus},");
    let _ = writeln!(json, "  \"n_base_triples\": {n_base},");
    let _ = writeln!(json, "  \"insert_tps\": {insert_tps:.0},");
    json.push_str("  \"levels\": {\n");
    for (i, s) in samples.iter().enumerate() {
        let _ = writeln!(
            json,
            "    \"{}\": {{ \"delta_triples\": {}, \"starjoin4_qps\": {:.2}, \"q6_qps\": {:.2} }}{}",
            s.label,
            s.delta_triples,
            s.starjoin4_qps,
            s.q6_qps,
            if i + 1 < samples.len() { "," } else { "" }
        );
    }
    json.push_str("  },\n");
    let _ = writeln!(
        json,
        "  \"reorg\": {{ \"ms\": {reorg_ms:.1}, \"irregular_ratio_before\": {irr_before:.4}, \
         \"irregular_ratio_after\": {irr_after:.4}, \"matched_subjects\": {}, \
         \"unmatched_subjects\": {} }}",
        outcome.drift_before.matched_subjects, outcome.drift_before.unmatched_subjects
    );
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write bench json");
    println!("wrote {out_path}");
}
