//! Update-path benchmark: the cost of being a *living* store.
//!
//! The RDF-H triples are split by subject into an 80% base and a 20% delta
//! pool. The base is bulk-loaded and self-organized; the delta pool is then
//! inserted through `Database::insert_terms` in batches, pausing at 1%, 5%
//! and 20% (of base size) to measure query throughput over the merged
//! (base + delta) store. Per run this reports:
//!
//! * `insert_tps` — delta write throughput (triples/sec into the sorted
//!   runs, including incremental CS routing),
//! * per delta level: `starjoin4_qps` / `q6_qps` — RDFscan star and
//!   zone-map aggregation throughput at 0/1/5/20% pending delta, showing
//!   how much the merged-scan exception paths cost before a reorg,
//! * `reorg`: wall-clock cost of a **synchronous** `maybe_reorganize` at
//!   the 20% level — the full rebuild duration a writer used to stall for,
//! * `concurrent_reorg`: the background path — a `reorganize_async` rebuild
//!   runs while the writer keeps inserting and querying; reports the
//!   rebuild wall-clock next to the *max* insert-batch and query latency
//!   observed during it. The point of the swap protocol is
//!   `insert_max_ms << reorg_ms`: writers pay at most the short swap +
//!   catch-up fold, never the rebuild,
//! * `post_reorg` query throughput (should recover the 0%-delta numbers),
//! * `wal_overhead`: single-pass delta insert throughput into fresh stores
//!   under each durability policy (`Never` / `IntervalMs(50)` / `Always`)
//!   next to the non-durable baseline — the write-path price of the WAL.
//!
//! Before timing, the 20%-delta results are checked canonically identical
//! to a fresh bulk load of base + delta (sequential and 4-worker parallel),
//! and the post-swap store re-checked after the concurrent scenario — the
//! same differential contract `tests/updates_differential.rs` and
//! `tests/reorg_stress.rs` enforce.
//!
//! The host's `available_parallelism` is recorded as `host_cpus` (reorg
//! overlap numbers are only meaningful with ≥ 2 cores).
//!
//! Usage:
//!   bench_updates [--sf F] [--out PATH] [--smoke]

use sordf::{
    Database, ExecConfig, Generation, ParallelConfig, PlanScheme, QueryRequest, ReorgPolicy,
    SyncPolicy,
};
use sordf_bench::cli::{render_object, time_loop, BenchArgs, BenchJson};
use sordf_model::TermTriple;
use sordf_rdfh::{generate, RdfhConfig};
use std::fmt::Write as _;
use std::time::Instant;

fn star_query(width: usize) -> String {
    let props = [
        "lineitem_quantity",
        "lineitem_extendedprice",
        "lineitem_discount",
        "lineitem_tax",
    ];
    let mut body = String::new();
    for p in &props[..width] {
        let _ = writeln!(body, "?s <http://lod2.eu/schemas/rdfh#{p}> ?o_{p} .");
    }
    format!("SELECT ?s WHERE {{ {body} }}")
}

fn q6_query() -> String {
    r#"PREFIX rdfh: <http://lod2.eu/schemas/rdfh#>
SELECT (SUM(?price * ?disc) AS ?rev) WHERE {
  ?li rdfh:lineitem_shipdate ?d .
  ?li rdfh:lineitem_extendedprice ?price .
  ?li rdfh:lineitem_discount ?disc .
  FILTER(?d >= "1994-01-01"^^xsd:date && ?d < "1997-01-01"^^xsd:date)
}"#
    .to_string()
}

/// Deterministic subject bucketing (FNV-1a over the subject's debug form).
fn subject_bucket(t: &TermTriple, buckets: u64) -> u64 {
    let key = format!("{:?}", t.s);
    let mut h: u64 = 0xcbf29ce484222325;
    for b in key.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h % buckets
}

#[derive(Debug, Clone)]
struct Level {
    label: &'static str,
    delta_triples: usize,
    starjoin4_qps: f64,
    q6_qps: f64,
}

fn measure_level(
    db: &Database,
    label: &'static str,
    delta_triples: usize,
    min_secs: f64,
    min_iters: u64,
) -> Level {
    let exec = ExecConfig {
        scheme: PlanScheme::RdfScanJoin,
        zonemaps: true,
        ..Default::default()
    };
    let star = star_query(4);
    let q6 = q6_query();
    let star_req = QueryRequest::sparql(&star)
        .generation(Generation::Clustered)
        .config(exec);
    let q6_req = QueryRequest::sparql(&q6)
        .generation(Generation::Clustered)
        .config(exec);
    let starjoin4_qps = time_loop(min_secs, min_iters, || {
        let _ = db.execute(&star_req).expect("star");
    });
    let q6_qps = time_loop(min_secs, min_iters, || {
        let _ = db.execute(&q6_req).expect("q6");
    });
    Level {
        label,
        delta_triples,
        starjoin4_qps,
        q6_qps,
    }
}

/// Canonical-equality check of the live store against a fresh bulk load of
/// the same logical set, sequential + 4-worker parallel.
fn assert_differential(db: &Database, base: &[TermTriple], delta: &[TermTriple], what: &str) {
    let reference = Database::in_temp_dir().unwrap();
    reference.load_terms(base).unwrap();
    reference.load_terms(delta).unwrap();
    reference.self_organize().unwrap();
    let exec = ExecConfig {
        scheme: PlanScheme::RdfScanJoin,
        zonemaps: true,
        ..Default::default()
    };
    let par = ParallelConfig::with_workers(4);
    for q in [star_query(4), q6_query()] {
        let req = QueryRequest::sparql(&q)
            .generation(Generation::Clustered)
            .config(exec);
        let want = reference
            .execute(&req)
            .expect("reference")
            .results
            .canonical(&reference.dict());
        let seq = db.execute(&req).expect("live").results;
        assert_eq!(
            seq.canonical(&db.dict()),
            want,
            "{what}: live store diverges from bulk load"
        );
        let parallel = db
            .execute(&req.clone().parallel(par))
            .expect("live parallel");
        assert_eq!(
            parallel.results.canonical(&db.dict()),
            want,
            "{what}: parallel diverges"
        );
    }
}

/// What the writer and readers observed while a background rebuild ran.
struct ConcurrentReorg {
    reorg_ms: f64,
    insert_batches: usize,
    catch_up_triples: usize,
    insert_max_ms: f64,
    insert_mean_ms: f64,
    query_max_ms: f64,
    query_mean_ms: f64,
}

/// Run `reorganize_async` and hammer the writer + a reader until the swap
/// lands: the background-reorg scenario. `pool` feeds the catch-up inserts
/// (consumed in 256-triple batches); the count consumed is reported.
fn concurrent_reorg_scenario(db: &Database, pool: &[TermTriple]) -> ConcurrentReorg {
    let exec = ExecConfig {
        scheme: PlanScheme::RdfScanJoin,
        zonemaps: true,
        ..Default::default()
    };
    let star = star_query(4);
    let mut insert_lat = Vec::new();
    let mut query_lat = Vec::new();
    let mut consumed = 0usize;

    let t0 = Instant::now();
    let handle = db.reorganize_async().expect("reorganize_async");
    // Interleave insert batches and queries until the rebuild + swap are
    // done. At least one batch runs even if the rebuild wins the race.
    loop {
        if consumed < pool.len() {
            let end = (consumed + 256).min(pool.len());
            let t = Instant::now();
            db.insert_terms(&pool[consumed..end])
                .expect("insert during reorg");
            insert_lat.push(t.elapsed().as_secs_f64() * 1e3);
            consumed = end;
        }
        let t = Instant::now();
        let _ = db
            .execute(
                &QueryRequest::sparql(&star)
                    .generation(Generation::Clustered)
                    .config(exec),
            )
            .expect("query during reorg");
        query_lat.push(t.elapsed().as_secs_f64() * 1e3);
        if handle.is_finished() {
            break;
        }
    }
    let outcome = handle.wait().expect("background reorg");
    let reorg_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert!(
        outcome.fired && outcome.swapped,
        "nothing raced the rebuild: it must swap"
    );

    let max = |v: &[f64]| v.iter().copied().fold(0.0f64, f64::max);
    let mean = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    ConcurrentReorg {
        reorg_ms,
        insert_batches: insert_lat.len(),
        catch_up_triples: consumed,
        insert_max_ms: max(&insert_lat),
        insert_mean_ms: mean(&insert_lat),
        query_max_ms: max(&query_lat),
        query_mean_ms: mean(&query_lat),
    }
}

/// Insert throughput of `pool` into a fresh store under one durability
/// configuration: `None` is the in-memory baseline, `Some(policy)` a
/// durable store logging every write to the WAL under that sync policy.
/// A single pass (inserts aren't repeatable, so no `time_loop`); the WAL
/// tail is flushed before the clock stops so deferred-sync policies don't
/// get credit for bytes still sitting in the page cache.
fn wal_insert_tps(
    label: &str,
    base: &[TermTriple],
    pool: &[TermTriple],
    policy: Option<SyncPolicy>,
) -> f64 {
    let dir = std::env::temp_dir().join(format!("sordf-bench-wal-{}-{label}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let db = match policy {
        None => Database::in_temp_dir().expect("baseline db"),
        Some(p) => Database::create_durable(&dir, p).expect("durable db"),
    };
    db.load_terms(base).expect("load base");
    db.self_organize().expect("organize");
    let t0 = Instant::now();
    let mut done = 0usize;
    while done < pool.len() {
        let end = (done + 512).min(pool.len());
        db.insert_terms(&pool[done..end]).expect("insert");
        done = end;
    }
    db.flush_wal().expect("flush wal");
    let tps = pool.len() as f64 / t0.elapsed().as_secs_f64();
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
    tps
}

fn main() {
    let args = BenchArgs::parse("BENCH_updates.json");
    let (min_secs, min_iters) = (args.min_secs, args.min_iters);

    let data = generate(&RdfhConfig::new(args.sf));
    let (mut base, mut pool) = (Vec::new(), Vec::new());
    for t in &data.triples {
        if subject_bucket(t, 5) == 0 {
            pool.push(t.clone());
        } else {
            base.push(t.clone());
        }
    }

    let db = Database::in_temp_dir().unwrap();
    db.load_terms(&base).unwrap();
    db.self_organize().unwrap();
    let n_base = base.len();

    // Delta levels as fractions of the base size; the 20% pool bounds them.
    let levels: &[(&'static str, f64)] = &[
        ("delta_0pct", 0.0),
        ("delta_1pct", 0.01),
        ("delta_5pct", 0.05),
        ("delta_20pct", 0.20),
    ];
    let mut samples: Vec<Level> = Vec::new();
    let mut inserted = 0usize;
    let mut insert_secs = 0f64;
    for &(label, frac) in levels {
        let target = (((n_base as f64) * frac) as usize).min(pool.len());
        while inserted < target {
            let batch_end = (inserted + 512).min(target);
            let t0 = Instant::now();
            db.insert_terms(&pool[inserted..batch_end]).expect("insert");
            insert_secs += t0.elapsed().as_secs_f64();
            inserted = batch_end;
        }
        samples.push(measure_level(&db, label, inserted, min_secs, min_iters));
        println!(
            "{:<12} delta {:>7} triples  starjoin4 {:>8.1} q/s  q6 {:>8.1} q/s",
            label,
            inserted,
            samples.last().unwrap().starjoin4_qps,
            samples.last().unwrap().q6_qps
        );
    }
    let insert_tps = if insert_secs > 0.0 {
        inserted as f64 / insert_secs
    } else {
        0.0
    };

    // Differential check at the deepest delta level.
    assert_differential(&db, &base, &pool[..inserted], "20% delta");

    // Synchronous reorganization cost at the 20% level — the full rebuild
    // duration a writer used to stall for before the background path.
    let drift = db.drift_stats();
    let irr_before = drift.irregular_ratio();
    let t0 = Instant::now();
    let outcome = db.maybe_reorganize(&ReorgPolicy::default()).expect("reorg");
    let reorg_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert!(outcome.fired, "a 20% delta must trip the default policy");
    let irr_after = outcome.irregular_ratio_after.unwrap_or(0.0);

    // Background reorganization: rebuild off-thread while the writer keeps
    // inserting (fed by the rest of the pool) and a reader keeps querying.
    let catch_up_pool = &pool[inserted..];
    let con = concurrent_reorg_scenario(&db, catch_up_pool);
    println!(
        "concurrent_reorg  rebuild {:>7.1} ms  insert max {:>6.2} ms / mean {:>6.2} ms  \
         query max {:>6.2} ms  ({} batches, {} catch-up triples)",
        con.reorg_ms,
        con.insert_max_ms,
        con.insert_mean_ms,
        con.query_max_ms,
        con.insert_batches,
        con.catch_up_triples
    );
    // The swap folded the catch-up writes: the store must still equal a
    // fresh bulk load of everything inserted so far.
    let total_inserted = inserted + con.catch_up_triples;
    assert_differential(&db, &base, &pool[..total_inserted], "post-swap catch-up");

    // Fold the caught-up delta and measure recovery.
    db.reorganize_now().expect("final fold");
    let post = measure_level(&db, "post_reorg", 0, min_secs, min_iters);
    println!(
        "{:<12} reorg {:>7.1} ms        starjoin4 {:>8.1} q/s  q6 {:>8.1} q/s",
        post.label, reorg_ms, post.starjoin4_qps, post.q6_qps
    );
    samples.push(post);

    // WAL overhead: re-run the delta insert into fresh stores, once per
    // durability policy, against the non-durable baseline. Deepest-level
    // slice only — enough batches to amortize setup, small enough to keep
    // the fsync-per-batch run bounded.
    let wal_slice = &pool[..inserted];
    let wal_policies: &[(&'static str, Option<SyncPolicy>)] = &[
        ("baseline", None),
        ("wal_never", Some(SyncPolicy::Never)),
        ("wal_interval_50ms", Some(SyncPolicy::IntervalMs(50))),
        ("wal_always", Some(SyncPolicy::Always)),
    ];
    let mut wal_rows: Vec<(&'static str, f64)> = Vec::new();
    for &(label, policy) in wal_policies {
        let tps = wal_insert_tps(label, &base, wal_slice, policy);
        println!("wal_overhead {label:<18} insert {tps:>10.0} t/s");
        wal_rows.push((label, tps));
    }
    let wal_baseline_tps = wal_rows[0].1.max(1e-9);

    let mut j = BenchJson::new("updates", args.sf);
    j.int("n_base_triples", n_base as u64);
    j.num("insert_tps", insert_tps, 0);
    j.raw(
        "levels",
        render_object(samples.iter().map(|s| {
            (
                s.label,
                format!(
                    "{{ \"delta_triples\": {}, \"starjoin4_qps\": {:.2}, \"q6_qps\": {:.2} }}",
                    s.delta_triples, s.starjoin4_qps, s.q6_qps
                ),
            )
        })),
    );
    j.raw(
        "reorg",
        format!(
            "{{ \"ms\": {reorg_ms:.1}, \"irregular_ratio_before\": {irr_before:.4}, \
             \"irregular_ratio_after\": {irr_after:.4}, \"matched_subjects\": {}, \
             \"unmatched_subjects\": {} }}",
            outcome.drift_before.matched_subjects, outcome.drift_before.unmatched_subjects
        ),
    );
    j.raw(
        "concurrent_reorg",
        format!(
            "{{ \"reorg_ms\": {:.1}, \"insert_batches\": {}, \"catch_up_triples\": {}, \
             \"insert_max_ms\": {:.2}, \"insert_mean_ms\": {:.2}, \
             \"query_max_ms\": {:.2}, \"query_mean_ms\": {:.2}, \
             \"writer_stall_vs_rebuild\": {:.4} }}",
            con.reorg_ms,
            con.insert_batches,
            con.catch_up_triples,
            con.insert_max_ms,
            con.insert_mean_ms,
            con.query_max_ms,
            con.query_mean_ms,
            con.insert_max_ms / con.reorg_ms.max(1e-9)
        ),
    );
    j.raw(
        "wal_overhead",
        render_object(wal_rows.iter().map(|(label, tps)| {
            (
                *label,
                format!(
                    "{{ \"insert_tps\": {tps:.0}, \"relative\": {:.4} }}",
                    tps / wal_baseline_tps
                ),
            )
        })),
    );
    j.write(&args.out_path);
}
