//! Memory-footprint benchmark: scan-on-compressed vs plain storage.
//!
//! Builds the full rig (baseline + CS tables + clustered store) twice from
//! the same RDF-H generation run — once with `ColumnEncoding::Plain`, once
//! with the default compressed pages — and reports:
//!
//! * resident bytes per triple (total, and the column/scan-resident subset),
//! * the compression ratio per column class (baseline permutations,
//!   CS-table segments, clustered segments, irregular remainders) and for
//!   the front-coded dictionary string run,
//! * compressed-vs-plain queries/sec on every `bench_vectorized` scenario.
//!
//! Non-smoke runs enforce the scan-on-compressed contract: the clustered
//! column footprint must shrink at least 3x, and no scenario may lose more
//! than 20% throughput against the plain build.
//!
//! Usage:
//!   bench_memory [--sf F] [--out PATH] [--smoke]

use sordf::{ColumnEncoding, QueryRequest};
use sordf_bench::cli::time_loop;
use sordf_bench::cli::{render_object, BenchArgs, BenchJson};
use sordf_bench::scenarios::{self, Scenario};
use sordf_bench::Rig;
use sordf_rdfh::{generate, RdfhConfig};

/// Combined per-encoding footprint of a rig's two databases.
struct Footprint {
    total_bytes: u64,
    column_bytes: u64,
    /// `(name, encoded, plain)` per column class, summed across databases.
    classes: Vec<(&'static str, u64, u64)>,
    dict_string_bytes: u64,
    dict_string_plain_bytes: u64,
    n_triples: u64,
}

fn footprint(rig: &Rig) -> Footprint {
    let po = rig.parse_order.memory_stats();
    let cl = rig.clustered.memory_stats();
    let classes = po
        .classes
        .iter()
        .zip(cl.classes.iter())
        .map(|(a, b)| {
            assert_eq!(a.name, b.name);
            (a.name, a.encoded + b.encoded, a.plain + b.plain)
        })
        .collect();
    Footprint {
        // One logical store: count the shared base (dict + triples) once —
        // the two databases exist only because parse-order and clustered
        // OID schemes cannot coexist in one store.
        total_bytes: cl.total_bytes() + po.column_bytes,
        column_bytes: po.column_bytes + cl.column_bytes,
        classes,
        dict_string_bytes: cl.dict_string_bytes,
        dict_string_plain_bytes: cl.dict_string_plain_bytes,
        n_triples: cl.n_triples,
    }
}

fn qps(rig: &Rig, sc: &Scenario, min_secs: f64, min_iters: u64) -> f64 {
    let db = rig.db(sc.generation);
    let req = QueryRequest::sparql(&sc.query)
        .generation(sc.generation)
        .config(sc.exec);
    // Warm the pool and code paths; steady-state throughput is the metric.
    db.execute(&req).expect("warmup");
    time_loop(min_secs, min_iters, || {
        db.execute(&req).expect("query");
    })
}

fn main() {
    let args = BenchArgs::parse("BENCH_memory.json");

    let data = generate(&RdfhConfig::new(args.sf));
    eprintln!("rdfh sf={}: {} triples", args.sf, data.triples.len());
    let plain_rig = sordf_bench::rig_from(&data.triples, ColumnEncoding::Plain);
    let comp_rig = sordf_bench::rig_from(&data.triples, ColumnEncoding::Compressed);

    let plain = footprint(&plain_rig);
    let comp = footprint(&comp_rig);
    assert_eq!(plain.n_triples, comp.n_triples);
    let n = comp.n_triples as f64;

    let column_ratio = plain.column_bytes as f64 / comp.column_bytes.max(1) as f64;
    let total_ratio = plain.total_bytes as f64 / comp.total_bytes.max(1) as f64;
    println!(
        "resident bytes/triple: total {:.1} -> {:.1} ({total_ratio:.2}x)  columns {:.1} -> {:.1} ({column_ratio:.2}x)",
        plain.total_bytes as f64 / n,
        comp.total_bytes as f64 / n,
        plain.column_bytes as f64 / n,
        comp.column_bytes as f64 / n,
    );
    let class_ratio = |encoded: u64, plain_bytes: u64| {
        if encoded == 0 {
            1.0
        } else {
            plain_bytes as f64 / encoded as f64
        }
    };
    for (name, encoded, plain_bytes) in &comp.classes {
        let ratio = class_ratio(*encoded, *plain_bytes);
        println!("  {name:<10} {encoded:>12} B  (plain {plain_bytes:>12} B, {ratio:.2}x)");
    }
    let dict_ratio = comp.dict_string_plain_bytes as f64 / comp.dict_string_bytes.max(1) as f64;
    println!(
        "  {:<10} {:>12} B  (plain {:>12} B, {dict_ratio:.2}x)",
        "dict_str", comp.dict_string_bytes, comp.dict_string_plain_bytes
    );

    let mut scenario_rows: Vec<(&'static str, f64, f64)> = Vec::new();
    for sc in scenarios::all() {
        // Interleaved best-of-3: each build's measurement windows are spread
        // across the scenario's wall-clock span, so host scheduler drift
        // hits both sides instead of silently taxing whichever build ran
        // second — the <= 20% bar compares codecs, not CPU weather.
        let (mut p, mut c) = (0.0f64, 0.0f64);
        for _ in 0..3 {
            p = p.max(qps(&plain_rig, &sc, args.min_secs, args.min_iters));
            c = c.max(qps(&comp_rig, &sc, args.min_secs, args.min_iters));
        }
        println!(
            "{:<20} plain {p:>9.2} q/s  compressed {c:>9.2} q/s  ({:.2}x)",
            sc.name,
            c / p
        );
        scenario_rows.push((sc.name, p, c));
    }

    let mut j = BenchJson::new("memory", args.sf);
    j.int("n_triples", comp.n_triples);
    j.num("plain_bytes_per_triple", plain.total_bytes as f64 / n, 2);
    j.num(
        "compressed_bytes_per_triple",
        comp.total_bytes as f64 / n,
        2,
    );
    j.num("total_compression_ratio", total_ratio, 2);
    j.num(
        "plain_column_bytes_per_triple",
        plain.column_bytes as f64 / n,
        2,
    );
    j.num(
        "compressed_column_bytes_per_triple",
        comp.column_bytes as f64 / n,
        2,
    );
    j.num("column_compression_ratio", column_ratio, 2);
    j.raw(
        "column_classes",
        render_object(comp.classes.iter().map(|(name, encoded, plain_bytes)| {
            (
                *name,
                format!(
                    "{{ \"encoded_bytes\": {encoded}, \"plain_bytes\": {plain_bytes}, \"ratio\": {:.2} }}",
                    class_ratio(*encoded, *plain_bytes)
                ),
            )
        })),
    );
    j.raw(
        "dict_strings",
        format!(
            "{{ \"encoded_bytes\": {}, \"plain_bytes\": {}, \"ratio\": {dict_ratio:.2} }}",
            comp.dict_string_bytes, comp.dict_string_plain_bytes
        ),
    );
    j.raw(
        "scenarios",
        render_object(scenario_rows.iter().map(|(name, p, c)| {
            (
                *name,
                format!(
                    "{{ \"plain_qps\": {p:.2}, \"compressed_qps\": {c:.2}, \"ratio\": {:.2} }}",
                    c / p
                ),
            )
        })),
    );
    j.write(&args.out_path);

    // Smoke runs (tiny scale, 0.1 s loops) are too noisy to gate on; the
    // full run enforces the scan-on-compressed acceptance bars.
    if !args.smoke {
        assert!(
            column_ratio >= 3.0,
            "column footprint must shrink >= 3x, got {column_ratio:.2}x"
        );
        for (name, p, c) in &scenario_rows {
            assert!(
                c / p >= 0.8,
                "{name}: compressed q/s regressed more than 20% ({c:.2} vs {p:.2})"
            );
        }
        println!("asserts passed: column ratio {column_ratio:.2}x >= 3x, all scenarios within 20%");
    }
}
