//! Parallel-execution benchmark: morsel-at-a-time operators and concurrent
//! query throughput over one shared (sharded) buffer pool.
//!
//! Per scenario this reports:
//!
//! * `seq_qps` — single-thread sequential throughput (the PR 2 path),
//! * `par2_qps` / `par4_qps` — one query at a time, morsel-parallel
//!   operators at 2 / 4 workers (intra-query parallelism),
//! * `clients4_qps` — 4 client threads each running sequential queries
//!   against the shared pool (inter-query parallelism, the serving shape),
//!
//! plus the speedups of the 4-worker and 4-client modes over `seq_qps`, and
//! — with `--baseline BENCH_vectorized.json` — over the recorded PR 2
//! numbers. Before timing, every parallel result is checked byte-identical
//! (canonical form) to the sequential one.
//!
//! The host's `available_parallelism` is recorded in the output: on a
//! single-core container the parallel modes are bounded at ~1x by physics
//! (the morsel executor can only interleave, not overlap), so speedups must
//! be read against `host_cpus`.
//!
//! Usage:
//!   bench_parallel [--sf F] [--out PATH] [--baseline PATH] [--smoke]

use sordf::{Database, ExecConfig, Generation, ParallelConfig, PlanScheme};
use sordf_bench::{build_rig, Rig};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

struct Scenario {
    name: &'static str,
    query: String,
    generation: Generation,
    exec: ExecConfig,
}

#[derive(Debug, Clone)]
struct Sample {
    name: &'static str,
    seq_qps: f64,
    par2_qps: f64,
    par4_qps: f64,
    clients4_qps: f64,
    result_rows: usize,
}

fn star_query(width: usize) -> String {
    let props = [
        "lineitem_quantity",
        "lineitem_extendedprice",
        "lineitem_discount",
        "lineitem_tax",
        "lineitem_shipmode",
        "lineitem_returnflag",
    ];
    let mut body = String::new();
    for p in &props[..width] {
        let _ = writeln!(body, "?s <http://lod2.eu/schemas/rdfh#{p}> ?o_{p} .");
    }
    format!("SELECT ?s WHERE {{ {body} }}")
}

fn q6_query(months: u32) -> String {
    let end_year = 1994 + months / 12;
    let end_month = months % 12 + 1;
    format!(
        r#"PREFIX rdfh: <http://lod2.eu/schemas/rdfh#>
SELECT (SUM(?price * ?disc) AS ?rev) WHERE {{
  ?li rdfh:lineitem_shipdate ?d .
  ?li rdfh:lineitem_extendedprice ?price .
  ?li rdfh:lineitem_discount ?disc .
  FILTER(?d >= "1994-01-01"^^xsd:date && ?d < "{end_year}-{end_month:02}-01"^^xsd:date)
}}"#
    )
}

fn scenarios() -> Vec<Scenario> {
    let rdfscan = ExecConfig { scheme: PlanScheme::RdfScanJoin, zonemaps: true };
    let default = ExecConfig { scheme: PlanScheme::Default, zonemaps: true };
    vec![
        Scenario {
            name: "starjoin6_rdfscan",
            query: star_query(6),
            generation: Generation::Clustered,
            exec: rdfscan,
        },
        Scenario {
            name: "starjoin6_default",
            query: star_query(6),
            generation: Generation::Clustered,
            exec: default,
        },
        Scenario {
            name: "starjoin4_sparse",
            query: star_query(4),
            generation: Generation::CsParseOrder,
            exec: rdfscan,
        },
        Scenario {
            name: "zonemap_q6_36mo",
            query: q6_query(36),
            generation: Generation::Clustered,
            exec: rdfscan,
        },
    ]
}

fn time_loop(min_secs: f64, min_iters: u64, mut body: impl FnMut()) -> f64 {
    let mut iters = 0u64;
    let t0 = Instant::now();
    loop {
        body();
        iters += 1;
        if iters >= min_iters && t0.elapsed().as_secs_f64() >= min_secs {
            break;
        }
    }
    iters as f64 / t0.elapsed().as_secs_f64()
}

/// 4 client threads running the sequential path concurrently against the
/// shared pool; returns aggregate queries/sec.
fn concurrent_clients_qps(
    db: &Database,
    sc: &Scenario,
    n_clients: usize,
    min_secs: f64,
    min_iters: u64,
) -> f64 {
    let stop = AtomicBool::new(false);
    let total = AtomicU64::new(0);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..n_clients)
            .map(|_| {
                let (stop, total) = (&stop, &total);
                s.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let _ =
                            db.query_traced(&sc.query, sc.generation, sc.exec).expect("query");
                        // Published per query: the controller's stop
                        // condition watches this count.
                        total.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        while t0.elapsed().as_secs_f64() < min_secs
            || total.load(Ordering::Relaxed) < min_iters * n_clients as u64
        {
            // A dead client means a query failed — stop immediately so the
            // scope join surfaces its panic instead of spinning forever on
            // a count that can no longer be reached.
            if handles.iter().any(|h| h.is_finished()) {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        stop.store(true, Ordering::Relaxed);
    });
    total.load(Ordering::Relaxed) as f64 / t0.elapsed().as_secs_f64()
}

fn run_scenario(rig: &Rig, sc: &Scenario, min_secs: f64, min_iters: u64) -> Sample {
    let db = rig.db(sc.generation);
    let par2 = ParallelConfig::with_workers(2);
    let par4 = ParallelConfig::with_workers(4);

    // Warm the pool + differential sanity: parallel must be byte-identical.
    let warm = db.query_traced(&sc.query, sc.generation, sc.exec).expect("warmup");
    let par_check = db
        .query_traced_parallel(&sc.query, sc.generation, sc.exec, &par4)
        .expect("parallel warmup");
    assert_eq!(
        warm.results.canonical(db.dict()),
        par_check.results.canonical(db.dict()),
        "{}: parallel result diverges from sequential",
        sc.name
    );
    let result_rows = warm.results.len();

    let seq_qps = time_loop(min_secs, min_iters, || {
        let _ = db.query_traced(&sc.query, sc.generation, sc.exec).expect("query");
    });
    let par2_qps = time_loop(min_secs, min_iters, || {
        let _ = db
            .query_traced_parallel(&sc.query, sc.generation, sc.exec, &par2)
            .expect("query");
    });
    let par4_qps = time_loop(min_secs, min_iters, || {
        let _ = db
            .query_traced_parallel(&sc.query, sc.generation, sc.exec, &par4)
            .expect("query");
    });
    let clients4_qps = concurrent_clients_qps(db, sc, 4, min_secs, min_iters);

    Sample { name: sc.name, seq_qps, par2_qps, par4_qps, clients4_qps, result_rows }
}

fn json_of(samples: &[Sample], sf: f64, n_triples: usize, baseline_json: Option<&str>) -> String {
    let host_cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"parallel\",");
    let _ = writeln!(out, "  \"sf\": {sf},");
    let _ = writeln!(out, "  \"n_triples\": {n_triples},");
    let _ = writeln!(out, "  \"host_cpus\": {host_cpus},");
    out.push_str("  \"scenarios\": {\n");
    for (i, s) in samples.iter().enumerate() {
        let _ = writeln!(
            out,
            "    \"{}\": {{ \"seq_qps\": {:.2}, \"par2_qps\": {:.2}, \"par4_qps\": {:.2}, \
             \"clients4_qps\": {:.2}, \"speedup_par4_vs_seq\": {:.2}, \
             \"speedup_clients4_vs_seq\": {:.2}, \"result_rows\": {} }}{}",
            s.name,
            s.seq_qps,
            s.par2_qps,
            s.par4_qps,
            s.clients4_qps,
            s.par4_qps / s.seq_qps,
            s.clients4_qps / s.seq_qps,
            s.result_rows,
            if i + 1 < samples.len() { "," } else { "" }
        );
    }
    out.push_str("  }");
    if let Some(base) = baseline_json {
        out.push_str(",\n  \"speedup_vs_pr2_single_thread\": {\n");
        let speedups: Vec<(String, f64, f64, f64)> = samples
            .iter()
            .filter_map(|s| {
                extract_scenario_field(base, s.name, "qps").map(|b| {
                    (
                        s.name.to_string(),
                        s.par4_qps.max(s.clients4_qps) / b,
                        s.seq_qps / b,
                        b,
                    )
                })
            })
            .collect();
        for (i, (name, best4, seq_ratio, base_qps)) in speedups.iter().enumerate() {
            let _ = writeln!(
                out,
                "    \"{name}\": {{ \"best_4worker_speedup\": {best4:.2}, \
                 \"seq_speedup\": {seq_ratio:.2}, \"pr2_qps\": {base_qps:.2} }}{}",
                if i + 1 < speedups.len() { "," } else { "" }
            );
        }
        out.push_str("  }\n");
    } else {
        out.push('\n');
    }
    out.push_str("}\n");
    out
}

/// Pull `"field": <number>` out of a scenario object in our own JSON format.
fn extract_scenario_field(json: &str, scenario: &str, field: &str) -> Option<f64> {
    let start = json.find(&format!("\"{scenario}\""))?;
    let obj = &json[start..start + json[start..].find('}')?];
    let fstart = obj.find(&format!("\"{field}\""))?;
    let after = obj[fstart..].split_once(':')?.1;
    let num: String = after
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e')
        .collect();
    num.parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag_val = |name: &str| -> Option<String> {
        args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
    };
    let smoke = args.iter().any(|a| a == "--smoke");
    let sf = flag_val("--sf")
        .and_then(|s| s.parse().ok())
        .unwrap_or(if smoke { 0.001 } else { 0.005 });
    let out_path = flag_val("--out").unwrap_or_else(|| "BENCH_parallel.json".to_string());
    let baseline = flag_val("--baseline").and_then(|p| std::fs::read_to_string(p).ok());
    let (min_secs, min_iters) = if smoke { (0.1, 2) } else { (1.5, 10) };

    let rig = build_rig(sf);
    let samples: Vec<Sample> =
        scenarios().iter().map(|sc| run_scenario(&rig, sc, min_secs, min_iters)).collect();

    for s in &samples {
        println!(
            "{:<20} seq {:>8.1} q/s  par2 {:>8.1}  par4 {:>8.1}  4-clients {:>8.1}  ({:>4.2}x / {:>4.2}x vs seq)  {:>6} rows",
            s.name,
            s.seq_qps,
            s.par2_qps,
            s.par4_qps,
            s.clients4_qps,
            s.par4_qps / s.seq_qps,
            s.clients4_qps / s.seq_qps,
            s.result_rows
        );
    }

    let json = json_of(&samples, sf, rig.n_triples, baseline.as_deref());
    std::fs::write(&out_path, &json).expect("write bench json");
    println!("wrote {out_path}");
}
