//! Parallel-execution benchmark: morsel-at-a-time operators and concurrent
//! query throughput over one shared (sharded) buffer pool.
//!
//! Per scenario this reports:
//!
//! * `seq_qps` — single-thread sequential throughput (the PR 2 path),
//! * `par2_qps` / `par4_qps` — one query at a time, morsel-parallel
//!   operators at 2 / 4 workers (intra-query parallelism),
//! * `clients4_qps` — 4 client threads each running sequential queries
//!   against the shared pool (inter-query parallelism, the serving shape),
//!
//! plus the speedups of the 4-worker and 4-client modes over `seq_qps`, and
//! — with `--baseline BENCH_vectorized.json` — over the recorded PR 2
//! numbers. Before timing, every parallel result is checked byte-identical
//! (canonical form) to the sequential one.
//!
//! The host's `available_parallelism` is recorded in the output: on a
//! single-core container the parallel modes are bounded at ~1x by physics
//! (the morsel executor can only interleave, not overlap), so speedups must
//! be read against `host_cpus`.
//!
//! Usage:
//!   bench_parallel [--sf F] [--out PATH] [--baseline PATH] [--smoke]

use sordf::{Database, ExecConfig, Generation, ParallelConfig, PlanScheme, QueryRequest};
use sordf_bench::cli::{extract_scenario_field, render_object, time_loop, BenchArgs, BenchJson};
use sordf_bench::{build_rig, Rig};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

struct Scenario {
    name: &'static str,
    query: String,
    generation: Generation,
    exec: ExecConfig,
}

#[derive(Debug, Clone)]
struct Sample {
    name: &'static str,
    seq_qps: f64,
    par2_qps: f64,
    par4_qps: f64,
    clients4_qps: f64,
    result_rows: usize,
}

fn star_query(width: usize) -> String {
    let props = [
        "lineitem_quantity",
        "lineitem_extendedprice",
        "lineitem_discount",
        "lineitem_tax",
        "lineitem_shipmode",
        "lineitem_returnflag",
    ];
    let mut body = String::new();
    for p in &props[..width] {
        let _ = writeln!(body, "?s <http://lod2.eu/schemas/rdfh#{p}> ?o_{p} .");
    }
    format!("SELECT ?s WHERE {{ {body} }}")
}

fn q6_query(months: u32) -> String {
    let end_year = 1994 + months / 12;
    let end_month = months % 12 + 1;
    format!(
        r#"PREFIX rdfh: <http://lod2.eu/schemas/rdfh#>
SELECT (SUM(?price * ?disc) AS ?rev) WHERE {{
  ?li rdfh:lineitem_shipdate ?d .
  ?li rdfh:lineitem_extendedprice ?price .
  ?li rdfh:lineitem_discount ?disc .
  FILTER(?d >= "1994-01-01"^^xsd:date && ?d < "{end_year}-{end_month:02}-01"^^xsd:date)
}}"#
    )
}

fn scenarios() -> Vec<Scenario> {
    let rdfscan = ExecConfig {
        scheme: PlanScheme::RdfScanJoin,
        zonemaps: true,
        ..Default::default()
    };
    let default = ExecConfig {
        scheme: PlanScheme::Default,
        zonemaps: true,
        ..Default::default()
    };
    vec![
        Scenario {
            name: "starjoin6_rdfscan",
            query: star_query(6),
            generation: Generation::Clustered,
            exec: rdfscan,
        },
        Scenario {
            name: "starjoin6_default",
            query: star_query(6),
            generation: Generation::Clustered,
            exec: default,
        },
        Scenario {
            name: "starjoin4_sparse",
            query: star_query(4),
            generation: Generation::CsParseOrder,
            exec: rdfscan,
        },
        Scenario {
            name: "zonemap_q6_36mo",
            query: q6_query(36),
            generation: Generation::Clustered,
            exec: rdfscan,
        },
    ]
}

/// 4 client threads running the sequential path concurrently against the
/// shared pool; returns aggregate queries/sec.
fn concurrent_clients_qps(
    db: &Database,
    sc: &Scenario,
    n_clients: usize,
    min_secs: f64,
    min_iters: u64,
) -> f64 {
    // ordering: Relaxed for `stop` and `total` throughout — both are
    // benchmark control/progress flags with no data published through them;
    // the final count is made exact by the scope join.
    let stop = AtomicBool::new(false);
    let total = AtomicU64::new(0);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..n_clients)
            .map(|_| {
                let (stop, total) = (&stop, &total);
                s.spawn(move || {
                    let req = QueryRequest::sparql(&sc.query)
                        .generation(sc.generation)
                        .config(sc.exec);
                    while !stop.load(Ordering::Relaxed) {
                        let _ = db.execute(&req).expect("query");
                        // Published per query: the controller's stop
                        // condition watches this count.
                        total.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        while t0.elapsed().as_secs_f64() < min_secs
            || total.load(Ordering::Relaxed) < min_iters * n_clients as u64
        {
            // A dead client means a query failed — stop immediately so the
            // scope join surfaces its panic instead of spinning forever on
            // a count that can no longer be reached.
            if handles.iter().any(|h| h.is_finished()) {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        stop.store(true, Ordering::Relaxed);
    });
    total.load(Ordering::Relaxed) as f64 / t0.elapsed().as_secs_f64()
}

fn run_scenario(rig: &Rig, sc: &Scenario, min_secs: f64, min_iters: u64) -> Sample {
    let db = rig.db(sc.generation);
    let par2 = ParallelConfig::with_workers(2);
    let par4 = ParallelConfig::with_workers(4);

    let seq_req = QueryRequest::sparql(&sc.query)
        .generation(sc.generation)
        .config(sc.exec);
    // Warm the pool + differential sanity: parallel must be byte-identical.
    let warm = db.execute(&seq_req).expect("warmup");
    let par_check = db
        .execute(&seq_req.clone().parallel(par4))
        .expect("parallel warmup");
    assert_eq!(
        warm.results.canonical(&db.dict()),
        par_check.results.canonical(&db.dict()),
        "{}: parallel result diverges from sequential",
        sc.name
    );
    let result_rows = warm.results.len();

    let par2_req = seq_req.clone().parallel(par2);
    let par4_req = seq_req.clone().parallel(par4);
    let seq_qps = time_loop(min_secs, min_iters, || {
        let _ = db.execute(&seq_req).expect("query");
    });
    let par2_qps = time_loop(min_secs, min_iters, || {
        let _ = db.execute(&par2_req).expect("query");
    });
    let par4_qps = time_loop(min_secs, min_iters, || {
        let _ = db.execute(&par4_req).expect("query");
    });
    let clients4_qps = concurrent_clients_qps(db, sc, 4, min_secs, min_iters);

    Sample {
        name: sc.name,
        seq_qps,
        par2_qps,
        par4_qps,
        clients4_qps,
        result_rows,
    }
}

fn json_of(samples: &[Sample], sf: f64, n_triples: usize, baseline_json: Option<&str>) -> String {
    let mut j = BenchJson::new("parallel", sf);
    j.int("n_triples", n_triples as u64);
    j.raw(
        "scenarios",
        render_object(samples.iter().map(|s| {
            (
                s.name,
                format!(
                    "{{ \"seq_qps\": {:.2}, \"par2_qps\": {:.2}, \"par4_qps\": {:.2}, \
                     \"clients4_qps\": {:.2}, \"speedup_par4_vs_seq\": {:.2}, \
                     \"speedup_clients4_vs_seq\": {:.2}, \"result_rows\": {} }}",
                    s.seq_qps,
                    s.par2_qps,
                    s.par4_qps,
                    s.clients4_qps,
                    s.par4_qps / s.seq_qps,
                    s.clients4_qps / s.seq_qps,
                    s.result_rows
                ),
            )
        })),
    );
    if let Some(base) = baseline_json {
        j.raw(
            "speedup_vs_pr2_single_thread",
            render_object(samples.iter().filter_map(|s| {
                extract_scenario_field(base, s.name, "qps").map(|b| {
                    (
                        s.name,
                        format!(
                            "{{ \"best_4worker_speedup\": {:.2}, \"seq_speedup\": {:.2}, \
                             \"pr2_qps\": {b:.2} }}",
                            s.par4_qps.max(s.clients4_qps) / b,
                            s.seq_qps / b
                        ),
                    )
                })
            })),
        );
    }
    j.render()
}

fn main() {
    let args = BenchArgs::parse("BENCH_parallel.json");

    let rig = build_rig(args.sf);
    let samples: Vec<Sample> = scenarios()
        .iter()
        .map(|sc| run_scenario(&rig, sc, args.min_secs, args.min_iters))
        .collect();

    for s in &samples {
        println!(
            "{:<20} seq {:>8.1} q/s  par2 {:>8.1}  par4 {:>8.1}  4-clients {:>8.1}  ({:>4.2}x / {:>4.2}x vs seq)  {:>6} rows",
            s.name,
            s.seq_qps,
            s.par2_qps,
            s.par4_qps,
            s.clients4_qps,
            s.par4_qps / s.seq_qps,
            s.clients4_qps / s.seq_qps,
            s.result_rows
        );
    }

    let json = json_of(&samples, args.sf, rig.n_triples, args.baseline.as_deref());
    std::fs::write(&args.out_path, &json).expect("write bench json");
    println!("wrote {}", args.out_path);
}
