//! **Fig. 4** — RDFscan/RDFjoin plan shapes.
//!
//! Fig. 4a shows a 4-property star: the Default plan needs four IdxScans and
//! three merge joins; RDFscan answers it with one operator. Fig. 4b adds a
//! second star reached over a link (`?s prop4 ?s2 . ?s2 prop5 "B"`): five
//! IdxScans and four joins vs. one RDFscan + one RDFjoin. This harness
//! reports the actual operator counts from the executed plans, plus
//! runtimes, on RDF-H data.

use sordf::{ExecConfig, Generation, PlanScheme, QueryRequest};
use sordf_bench::{build_rig, sf_from_env};

fn main() {
    let rig = build_rig(sf_from_env());

    // Fig. 4a analogue: a 4-property star over lineitem with one constant.
    let star4 = r#"
PREFIX rdfh: <http://lod2.eu/schemas/rdfh#>
SELECT ?o1 ?o2 ?o3 WHERE {
  ?s rdfh:lineitem_quantity ?o1 .
  ?s rdfh:lineitem_extendedprice ?o2 .
  ?s rdfh:lineitem_discount ?o3 .
  ?s rdfh:lineitem_returnflag "A" .
}"#;
    // Fig. 4b analogue: the same star probing a second star over a link.
    let star_join = r#"
PREFIX rdfh: <http://lod2.eu/schemas/rdfh#>
SELECT ?o1 ?o2 ?o3 WHERE {
  ?s rdfh:lineitem_quantity ?o1 .
  ?s rdfh:lineitem_extendedprice ?o2 .
  ?s rdfh:lineitem_discount ?o3 .
  ?s rdfh:lineitem_orderkey ?s2 .
  ?s2 rdfh:order_orderpriority "1-URGENT" .
}"#;

    println!("== Fig. 4: join effort, Default vs RDFscan/RDFjoin ==");
    for (name, q, paper) in [
        (
            "(a) 4-prop star",
            star4,
            "paper: 4 IdxScans + 3 MergeJoins -> 1 RDFscan",
        ),
        (
            "(b) star + FK link",
            star_join,
            "paper: 5 IdxScans + 4 joins -> RDFscan + RDFjoin",
        ),
    ] {
        println!("\n{name} — {paper}");
        for (label, scheme) in [
            ("Default", PlanScheme::Default),
            ("RDFscan/RDFjoin", PlanScheme::RdfScanJoin),
        ] {
            let exec = ExecConfig {
                scheme,
                zonemaps: true,
                ..Default::default()
            };
            let db = rig.db(Generation::Clustered);
            let t0 = std::time::Instant::now();
            let traced = db
                .execute(
                    &QueryRequest::sparql(q)
                        .generation(Generation::Clustered)
                        .config(exec)
                        .traced(true),
                )
                .expect("query");
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            let stats = traced.stats.expect("traced");
            println!(
                "  {label:<16} merge-joins {:>3}  hash-joins {:>2}  rdfscans {:>2}  rdfjoins {:>2}  scans {:>3}  {:>9.2} ms  rows {:>7}",
                stats.merge_joins,
                stats.hash_joins,
                stats.rdf_scans,
                stats.rdf_joins,
                stats.property_scans,
                ms,
                traced.results.len()
            );
        }
    }
}
