//! **Table I** — MonetDB+HSP performance on RDF-H, reproduced.
//!
//! Runs Q3 and Q6 under the six configurations of the paper (plan scheme ×
//! OID scheme × zone maps), cold and hot. Absolute times differ from the
//! paper (their testbed ran SF=10 on 2012 hardware inside MonetDB); the
//! *shape* — Clustered beats ParseOrder, RDFscan/RDFjoin beats Default by
//! about an order of magnitude, zone maps add another large factor on Q3 —
//! is the reproduction target.
//!
//! Environment: `SORDF_SF` scale factor (default 0.01),
//! `SORDF_PAGE_NS` synthetic cold-read latency per page (default 20000).

use sordf_bench::{
    build_rig, fmt_row, measure, page_latency_from_env, sf_from_env, TABLE1_CONFIGS,
};
use sordf_rdfh::{query, QueryId};

fn main() {
    let sf = sf_from_env();
    let page_ns = page_latency_from_env();
    let rig = build_rig(sf);
    println!(
        "== Table I reproduction (RDF-H sf={sf}, {} triples) ==",
        rig.n_triples
    );
    println!("paper reference (SF=10, seconds):");
    println!(
        "  Q3: Default/ParseOrder 37.50 cold / 19.66 hot ... RDFscan/Clustered+ZM 0.89 / 0.78"
    );
    println!(
        "  Q6: Default/ParseOrder 28.25 cold /  6.52 hot ... RDFscan/Clustered    1.47 / 0.44"
    );
    println!();

    for qid in [QueryId::Q3, QueryId::Q6] {
        println!("-- {} --", qid.name());
        let mut reference_rows: Option<usize> = None;
        for cfg in TABLE1_CONFIGS {
            let m = measure(&rig, &cfg, query(qid), page_ns);
            println!("{}", fmt_row(cfg.label, &m));
            match reference_rows {
                None => reference_rows = Some(m.n_rows),
                Some(r) => assert_eq!(r, m.n_rows, "configs disagree on result size!"),
            }
        }
        println!();
    }
}
