//! Fig. 3 microbenchmark: locality of a selective one-month scan on
//! ParseOrder CS tables vs the Clustered store (subject clustering +
//! shipdate sub-ordering turns it into a contiguous range scan).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sordf::{ExecConfig, Generation, PlanScheme, QueryRequest};
use sordf_bench::build_rig;

fn bench_clustering(c: &mut Criterion) {
    let rig = build_rig(0.005);
    let q = r#"
PREFIX rdfh: <http://lod2.eu/schemas/rdfh#>
SELECT ?li ?price WHERE {
  ?li rdfh:lineitem_shipdate ?d .
  ?li rdfh:lineitem_extendedprice ?price .
  FILTER(?d >= "1995-06-01"^^xsd:date && ?d < "1995-07-01"^^xsd:date)
}"#;
    let mut group = c.benchmark_group("fig3/selective_scan");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (label, generation) in [
        ("parse_order", Generation::CsParseOrder),
        ("clustered", Generation::Clustered),
    ] {
        let exec = ExecConfig {
            scheme: PlanScheme::RdfScanJoin,
            zonemaps: true,
            ..Default::default()
        };
        let db = rig.db(generation);
        group.bench_with_input(BenchmarkId::from_parameter(label), q, |b, q| {
            let req = QueryRequest::sparql(q).generation(generation).config(exec);
            b.iter(|| db.execute(&req).expect("query"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_clustering);
criterion_main!(benches);
