//! Fig. 4 microbenchmark: star-pattern evaluation, Default self-join plans
//! vs RDFscan/RDFjoin, as star width grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sordf::{ExecConfig, Generation, PlanScheme, QueryRequest};
use sordf_bench::build_rig;

fn bench_starjoin(c: &mut Criterion) {
    let rig = build_rig(0.005);
    let props = [
        "lineitem_quantity",
        "lineitem_extendedprice",
        "lineitem_discount",
        "lineitem_tax",
        "lineitem_shipmode",
        "lineitem_returnflag",
    ];
    let mut group = c.benchmark_group("fig4/star_width");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for width in [2usize, 3, 4, 6] {
        let mut body = String::new();
        for p in &props[..width] {
            body.push_str(&format!("?s <http://lod2.eu/schemas/rdfh#{p}> ?o_{p} .\n"));
        }
        let q = format!("SELECT ?s WHERE {{ {body} }}");
        for (label, scheme) in [
            ("default", PlanScheme::Default),
            ("rdfscan", PlanScheme::RdfScanJoin),
        ] {
            let exec = ExecConfig {
                scheme,
                zonemaps: true,
                ..Default::default()
            };
            let db = rig.db(Generation::Clustered);
            group.bench_with_input(BenchmarkId::new(label, width), &q, |b, q| {
                let req = QueryRequest::sparql(q)
                    .generation(Generation::Clustered)
                    .config(exec);
                b.iter(|| db.execute(&req).expect("query"))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_starjoin);
criterion_main!(benches);
