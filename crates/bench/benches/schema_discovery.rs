//! Research question (i): "How to efficiently and scalably detect and
//! summarize CS's" — throughput of the full discovery pipeline on clean and
//! dirty data.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sordf_datagen::{dirty, DirtyConfig};
use sordf_schema::SchemaConfig;
use sordf_storage::TripleSet;

fn bench_discovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("schema/discover");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for irregularity in [0.0, 0.3] {
        let triples = dirty(&DirtyConfig::with_irregularity(irregularity, 5_000));
        let mut ts = TripleSet::new();
        ts.extend_terms(&triples).unwrap();
        let spo = ts.sorted_spo();
        group.throughput(Throughput::Elements(spo.len() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("irregularity-{irregularity}")),
            &spo,
            |b, spo| b.iter(|| sordf_schema::discover(spo, &ts.dict, &SchemaConfig::default())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_discovery);
criterion_main!(benches);
