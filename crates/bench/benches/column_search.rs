//! Micro-bench for page-hoisted column binary search: `lower_bound_in` /
//! `partition_point_in` pin one page per narrowing step instead of issuing a
//! `BufferPool::get` per probed value. Run with a small pool so the probe
//! count, not just lock traffic, shows up in the timing.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sordf_columnar::{BufferPool, Column, DiskManager, VALS_PER_PAGE};
use std::sync::Arc;

fn bench_search(c: &mut Criterion) {
    let dm = Arc::new(DiskManager::temp().unwrap());
    let n = 64 * VALS_PER_PAGE as u64;
    let vals: Vec<u64> = (0..n).map(|i| i * 3).collect();
    let col = Column::from_slice(&dm, &vals);
    let pool = BufferPool::new(Arc::clone(&dm), 128);

    let mut group = c.benchmark_group("column/search");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    // Range-restricted search (the permutation-index `range2` access path):
    // full column, a 4-page run, and a within-page run.
    for (label, range) in [
        ("full", 0..col.len()),
        ("run4p", 8 * VALS_PER_PAGE..12 * VALS_PER_PAGE),
        ("inpage", 3 * VALS_PER_PAGE + 100..3 * VALS_PER_PAGE + 3000),
    ] {
        group.bench_with_input(BenchmarkId::new("lower_bound_in", label), &range, |b, r| {
            let mut probe = 0u64;
            b.iter(|| {
                probe = (probe + 997) % (n * 3);
                black_box(col.lower_bound_in(&pool, r.clone(), black_box(probe)))
            })
        });
        // The pre-hoisting strategy, kept in-bench as the baseline: a plain
        // binary search issuing one pool request per probed value.
        group.bench_with_input(
            BenchmarkId::new("lower_bound_in_rowwise", label),
            &range,
            |b, r| {
                let mut probe = 0u64;
                b.iter(|| {
                    probe = (probe + 997) % (n * 3);
                    let v = black_box(probe);
                    let (mut lo, mut hi) = (r.start, r.end.min(col.len()));
                    while lo < hi {
                        let mid = lo + (hi - lo) / 2;
                        if col.value(&pool, mid) < v {
                            lo = mid + 1;
                        } else {
                            hi = mid;
                        }
                    }
                    black_box(lo)
                })
            },
        );
    }
    group.bench_function("lower_bound_global", |b| {
        let mut probe = 0u64;
        b.iter(|| {
            probe = (probe + 997) % (n * 3);
            black_box(col.lower_bound(&pool, black_box(probe)))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_search);
criterion_main!(benches);
