//! Ext-2: zone-map pruning power vs. predicate selectivity (a Q6-style date
//! range of growing width on the clustered lineitem segment).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sordf::{ExecConfig, Generation, PlanScheme, QueryRequest};
use sordf_bench::build_rig;

fn bench_zonemap(c: &mut Criterion) {
    let rig = build_rig(0.005);
    let mut group = c.benchmark_group("zonemap/selectivity");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    // Date windows of growing width starting 1994-01-01.
    for months in [1u32, 3, 12, 36] {
        let end_year = 1994 + months / 12;
        let end_month = months % 12 + 1;
        let q = format!(
            r#"PREFIX rdfh: <http://lod2.eu/schemas/rdfh#>
SELECT (SUM(?price * ?disc) AS ?rev) WHERE {{
  ?li rdfh:lineitem_shipdate ?d .
  ?li rdfh:lineitem_extendedprice ?price .
  ?li rdfh:lineitem_discount ?disc .
  FILTER(?d >= "1994-01-01"^^xsd:date && ?d < "{end_year}-{end_month:02}-01"^^xsd:date)
}}"#
        );
        for (label, zm) in [("zm-off", false), ("zm-on", true)] {
            let exec = ExecConfig {
                scheme: PlanScheme::RdfScanJoin,
                zonemaps: zm,
                ..Default::default()
            };
            let db = rig.db(Generation::Clustered);
            group.bench_with_input(BenchmarkId::new(label, months), &q, |b, q| {
                let req = QueryRequest::sparql(q)
                    .generation(Generation::Clustered)
                    .config(exec);
                b.iter(|| db.execute(&req).expect("query"))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_zonemap);
criterion_main!(benches);
