//! Criterion version of Table I: hot-run timings of Q3 and Q6 under the six
//! plan/storage/zone-map configurations (the `table1` binary adds cold runs
//! and page counts; Criterion gives statistically robust hot numbers).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sordf::QueryRequest;
use sordf_bench::{build_rig, Rig, TABLE1_CONFIGS};
use sordf_rdfh::{query, QueryId};

fn bench_table1(c: &mut Criterion) {
    let sf = std::env::var("SORDF_SF")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.005);
    let rig: Rig = build_rig(sf);
    for qid in [QueryId::Q3, QueryId::Q6] {
        let mut group = c.benchmark_group(format!("table1/{}", qid.name()));
        group.sample_size(10);
        group.warm_up_time(std::time::Duration::from_millis(500));
        group.measurement_time(std::time::Duration::from_secs(2));
        for cfg in TABLE1_CONFIGS {
            let db = rig.db(cfg.generation);
            let exec = sordf::ExecConfig {
                scheme: cfg.scheme,
                zonemaps: cfg.zonemaps,
                ..Default::default()
            };
            group.bench_with_input(
                BenchmarkId::from_parameter(cfg.label.trim()),
                &exec,
                |b, exec| {
                    let req = QueryRequest::sparql(query(qid))
                        .generation(cfg.generation)
                        .config(*exec);
                    b.iter(|| db.execute(&req).expect("query"))
                },
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
