//! The write-path correctness backbone: a database that *lives* — organize,
//! insert, delete, re-organize — must answer every RDF-H query exactly like
//! a fresh bulk load of the same logical triple set.
//!
//! Setup: the RDF-H triples are partitioned by subject into A (~80%) and
//! B (~20%), and a deletion sample D is drawn from both. Three databases:
//!
//! * `ref_full`  — bulk load A ∪ B, self-organize (the pre-delete truth);
//! * `ref_final` — bulk load (A ∪ B) \ D, self-organize (the final truth);
//! * `live`      — bulk load A, self-organize, then *insert* B in batches
//!   and *delete* D through the delta store.
//!
//! Every catalog query must agree between `live` and `ref_final` across
//! both plan schemes, sequentially and morsel-parallel; a snapshot taken
//! before the deletes must still answer like `ref_full`; and an adaptive
//! `maybe_reorganize` must fire, reduce the irregular-triple ratio, and
//! change no answer.

use sordf::{
    Database, ExecConfig, Generation, ParallelConfig, PlanScheme, QueryRequest, ReorgPolicy,
};
use sordf_model::TermTriple;
use sordf_rdfh::{generate, query, RdfhConfig, ALL_QUERIES};
use std::collections::HashSet;

/// Deterministic subject bucketing (FNV-1a over the subject's debug form).
fn subject_bucket(t: &TermTriple, buckets: u64) -> u64 {
    let key = format!("{:?}", t.s);
    let mut h: u64 = 0xcbf29ce484222325;
    for b in key.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h % buckets
}

struct Fixture {
    a: Vec<TermTriple>,
    b: Vec<TermTriple>,
    deletions: Vec<TermTriple>,
}

fn fixture() -> Fixture {
    let data = generate(&RdfhConfig::new(0.001));
    let (mut a, mut b) = (Vec::new(), Vec::new());
    for t in &data.triples {
        if subject_bucket(t, 5) == 0 {
            b.push(t.clone());
        } else {
            a.push(t.clone());
        }
    }
    assert!(!a.is_empty() && !b.is_empty());
    // Deletion sample: individual triples from the organized base (every
    // 13th of A) and from the freshly inserted delta (every 7th of B).
    let mut deletions: Vec<TermTriple> = a
        .iter()
        .step_by(13)
        .cloned()
        .chain(b.iter().step_by(7).cloned())
        .collect();
    deletions.dedup();
    Fixture { a, b, deletions }
}

fn organized(triples: &[TermTriple]) -> Database {
    let db = Database::in_temp_dir().unwrap();
    db.load_terms(triples).unwrap();
    db.self_organize().unwrap();
    db
}

fn minus(all: &[TermTriple], remove: &[TermTriple]) -> Vec<TermTriple> {
    let dead: HashSet<&TermTriple> = remove.iter().collect();
    all.iter().filter(|t| !dead.contains(t)).cloned().collect()
}

fn par_config() -> ParallelConfig {
    // Small morsels so even the tiny test scale exercises real splitting.
    ParallelConfig {
        workers: 3,
        min_morsel_pages: 1,
        min_morsel_rows: 64,
    }
}

/// Canonical answers of one database for all catalog queries under one
/// exec configuration, sequential or parallel.
fn answers(db: &Database, exec: ExecConfig, parallel: bool) -> Vec<Vec<String>> {
    ALL_QUERIES
        .iter()
        .map(|qid| {
            let mut req = QueryRequest::sparql(query(*qid))
                .generation(Generation::Clustered)
                .config(exec);
            if parallel {
                req = req.parallel(par_config());
            }
            let rs = db
                .execute(&req)
                .unwrap_or_else(|e| panic!("{}: {e}", qid.name()))
                .results;
            rs.canonical(&db.dict())
        })
        .collect()
}

#[test]
fn updates_match_fresh_bulk_load() {
    let fx = fixture();
    let full: Vec<TermTriple> = fx.a.iter().chain(fx.b.iter()).cloned().collect();
    let ref_full = organized(&full);
    let ref_final = organized(&minus(&full, &fx.deletions));

    // The live database: organize A, then write B and the deletions.
    let live = organized(&fx.a);
    let n_batches = 3;
    let chunk = fx.b.len().div_ceil(n_batches);
    for batch in fx.b.chunks(chunk) {
        live.insert_terms(batch).unwrap();
    }
    let pre_delete = live.snapshot();
    let n_deleted = live.delete_triples(&fx.deletions).unwrap();
    assert_eq!(
        n_deleted,
        fx.deletions.len(),
        "every sampled triple was visible"
    );
    assert_eq!(live.n_triples(), ref_final.n_triples());

    let reference = answers(&ref_final, ExecConfig::default(), false);

    let configs = [
        ExecConfig {
            scheme: PlanScheme::RdfScanJoin,
            zonemaps: true,
            ..Default::default()
        },
        ExecConfig {
            scheme: PlanScheme::RdfScanJoin,
            zonemaps: false,
            ..Default::default()
        },
        ExecConfig {
            scheme: PlanScheme::Default,
            zonemaps: true,
            ..Default::default()
        },
    ];
    for exec in configs {
        for parallel in [false, true] {
            let got = answers(&live, exec, parallel);
            for (qi, qid) in ALL_QUERIES.iter().enumerate() {
                assert_eq!(
                    got[qi],
                    reference[qi],
                    "{} differs from fresh bulk load ({exec:?}, parallel={parallel})",
                    qid.name()
                );
                assert!(!reference[qi].is_empty(), "{} returned nothing", qid.name());
            }
        }
    }

    // MVCC-lite: the snapshot taken before the deletes still answers like
    // the pre-delete bulk load.
    let full_reference = answers(&ref_full, ExecConfig::default(), false);
    for (qi, qid) in ALL_QUERIES.iter().enumerate() {
        let rs = live.query_snapshot(query(*qid), pre_delete).unwrap();
        assert_eq!(
            rs.canonical(&live.dict()),
            full_reference[qi],
            "{} at the pre-delete snapshot differs from the pre-delete bulk load",
            qid.name()
        );
    }

    // Adaptive re-organization: drift crossed any sane threshold (B is ~20%
    // of the data), the reorg must fire, shrink the irregular share to the
    // bulk-load level, and preserve every answer.
    let drift_before = live.drift_stats();
    assert!(drift_before.n_delta_inserts > 0 && drift_before.n_tombstones > 0);
    assert!(
        drift_before.irregular_ratio() > 0.1,
        "unorganized delta should dominate the irregular share"
    );
    let outcome = live.maybe_reorganize(&ReorgPolicy::default()).unwrap();
    assert!(outcome.fired, "a ~20% delta must trip the default policy");
    let after = outcome.irregular_ratio_after.expect("organized database");
    assert!(
        after < drift_before.irregular_ratio() && after < 0.01,
        "reorg must reduce the irregular ratio (before {:.4}, after {after:.4})",
        drift_before.irregular_ratio()
    );
    assert_eq!(live.drift_stats().n_delta_inserts, 0, "delta collapsed");

    for parallel in [false, true] {
        let got = answers(&live, ExecConfig::default(), parallel);
        for (qi, qid) in ALL_QUERIES.iter().enumerate() {
            assert_eq!(
                got[qi],
                reference[qi],
                "{} differs after maybe_reorganize (parallel={parallel})",
                qid.name()
            );
        }
    }
}
