//! SQL frontend coverage: compilation shapes and edge cases over a real
//! emergent schema (the compiler needs class segments, so these live as
//! integration tests).

use sordf::{Database, Generation};
use sordf_model::{Term, TermTriple};

fn db_with_two_tables() -> Database {
    let mut triples = Vec::new();
    let mut add = |s: String, p: &str, o: Term| {
        triples.push(TermTriple::new(
            Term::iri(s),
            Term::iri(format!("http://e/{p}")),
            o,
        ));
    };
    for i in 0..40u64 {
        let s = format!("http://e/item{i}");
        add(s.clone(), "qty", Term::int((i % 10) as i64));
        add(s.clone(), "price", Term::decimal_f64(1.5 * (i % 8) as f64));
        add(
            s.clone(),
            "owner",
            Term::iri(format!("http://e/user{}", i % 5)),
        );
        add(s.clone(), "label", Term::str(format!("item-{i}")));
    }
    for u in 0..5u64 {
        let s = format!("http://e/user{u}");
        add(s.clone(), "name", Term::str(format!("user{u}")));
        add(s.clone(), "age", Term::int(20 + u as i64));
    }
    let db = Database::in_temp_dir().unwrap();
    db.load_terms(&triples).unwrap();
    db.self_organize().unwrap();
    db
}

#[test]
fn select_where_order_limit() {
    let db = db_with_two_tables();
    let rs = db
        .sql("SELECT label, qty FROM cs_label WHERE qty >= 8 ORDER BY label LIMIT 3")
        .unwrap();
    assert_eq!(rs.columns, vec!["cs_label__label", "cs_label__qty"]);
    assert_eq!(rs.len(), 3);
    let rows = rs.render(&db.dict());
    assert!(rows.iter().all(|r| r[1].parse::<i64>().unwrap() >= 8));
    // label-sorted ascending
    assert!(rows.windows(2).all(|w| w[0][0] <= w[1][0]));
}

#[test]
fn aggregates_and_group_by() {
    let db = db_with_two_tables();
    let rs = db
        .sql("SELECT qty, COUNT(*) AS n, AVG(price) AS avg_price FROM cs_label GROUP BY qty")
        .unwrap();
    assert_eq!(rs.len(), 10);
    let total: f64 = rs
        .render(&db.dict())
        .iter()
        .map(|r| r[1].parse::<f64>().unwrap())
        .sum();
    assert_eq!(total, 40.0);
}

#[test]
fn join_on_fk_subject() {
    let db = db_with_two_tables();
    // Resolve the user table's generated name (naming falls back to a
    // "cs_<prop>" identifier; which prop wins is a tie-break detail).
    let schema = db.schema().unwrap();
    let users = schema
        .classes
        .iter()
        .find(|c| c.columns.iter().any(|col| col.name == "name"))
        .unwrap()
        .name
        .clone();
    let rs = db
        .sql(&format!(
            "SELECT name, COUNT(*) AS n FROM cs_label i \
             JOIN {users} u ON i.owner = u.subject \
             GROUP BY name ORDER BY name"
        ))
        .unwrap();
    assert_eq!(rs.len(), 5);
    assert!(rs.render(&db.dict()).iter().all(|r| r[1] == "8"));
}

#[test]
fn between_and_string_equality() {
    let db = db_with_two_tables();
    let rs = db
        .sql("SELECT label FROM cs_label WHERE qty BETWEEN 2 AND 4 AND label = 'item-12'")
        .unwrap();
    assert_eq!(rs.len(), 1);
}

#[test]
fn distinct_works() {
    let db = db_with_two_tables();
    let rs = db.sql("SELECT DISTINCT qty FROM cs_label").unwrap();
    assert_eq!(rs.len(), 10);
}

#[test]
fn table_alias_and_qualified_refs() {
    let db = db_with_two_tables();
    let rs = db
        .sql("SELECT t.qty FROM cs_label t WHERE t.qty = 3")
        .unwrap();
    assert_eq!(rs.len(), 4);
}

#[test]
fn unknown_identifiers_error_cleanly() {
    let db = db_with_two_tables();
    for bad in [
        "SELECT * FROM cs_label", // '*' projection unsupported
        "SELECT qty FROM missing_table",
        "SELECT missing_col FROM cs_label",
        "SELECT qty FROM cs_label WHERE",
        "SELECT name FROM cs_label JOIN cs_name ON bogus", // non-equality join
    ] {
        assert!(db.sql(bad).is_err(), "should fail: {bad}");
    }
}

#[test]
fn sql_requires_self_organization() {
    let db = Database::in_temp_dir().unwrap();
    db.load_ntriples("<http://e/a> <http://e/p> <http://e/b> .")
        .unwrap();
    db.build_baseline().unwrap();
    assert!(db.sql("SELECT p FROM t").is_err());
    let _ = db.execute(
        &sordf::QueryRequest::sparql("SELECT ?o WHERE { <http://e/a> <http://e/p> ?o . }")
            .generation(Generation::Baseline),
    );
}
