//! Background-reorganization stress differential: queries must be
//! completely undisturbed by concurrent generation swaps.
//!
//! Phase 1 — **swap storm under readers**: the live database holds a fixed
//! logical triple set (base A organized + B pending in the delta), several
//! query threads hammer every RDF-H catalog query under both plan schemes
//! (one thread morsel-parallel), while the main thread forces full
//! background reorganizations in a loop. Each swap renumbers every OID,
//! replaces the dictionary and collapses the delta — yet every single
//! result, before, during and after any swap, must be canonically identical
//! to a quiesced reference database, because each query pins its generation
//! (dict + stores + delta view) at query start.
//!
//! Phase 2 — **catch-up fold**: writes land *while* a background rebuild is
//! running; after the swap the database must answer exactly like a fresh
//! bulk load of the final logical set (the catch-up writes were decoded
//! under the old dictionary, re-encoded under the new one and replayed into
//! the fresh delta).

use sordf::{Database, ExecConfig, Generation, ParallelConfig, PlanScheme};
use sordf_model::TermTriple;
use sordf_rdfh::{generate, query, RdfhConfig, ALL_QUERIES};
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Deterministic subject bucketing (FNV-1a over the subject's debug form).
fn subject_bucket(t: &TermTriple, buckets: u64) -> u64 {
    let key = format!("{:?}", t.s);
    let mut h: u64 = 0xcbf29ce484222325;
    for b in key.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h % buckets
}

fn organized(triples: &[TermTriple]) -> Database {
    let db = Database::in_temp_dir().unwrap();
    db.load_terms(triples).unwrap();
    db.self_organize().unwrap();
    db
}

fn schemes() -> [ExecConfig; 2] {
    [
        ExecConfig {
            scheme: PlanScheme::RdfScanJoin,
            zonemaps: true,
            ..Default::default()
        },
        ExecConfig {
            scheme: PlanScheme::Default,
            zonemaps: true,
            ..Default::default()
        },
    ]
}

/// Canonical answers for every catalog query under one configuration.
/// Decodes each result under the dictionary pin of the very execution that
/// produced it — under concurrent swaps the current dictionary may already
/// be a renumbered one.
fn answers(db: &Database, exec: ExecConfig, parallel: Option<&ParallelConfig>) -> Vec<Vec<String>> {
    ALL_QUERIES
        .iter()
        .map(|qid| {
            let (rs, dict) = db
                .query_pinned(query(*qid), Generation::Clustered, exec, parallel)
                .unwrap_or_else(|e| panic!("{}: {e}", qid.name()));
            rs.canonical(&dict)
        })
        .collect()
}

#[test]
fn concurrent_reorgs_preserve_all_answers() {
    let data = generate(&RdfhConfig::new(0.001));
    let (mut a, mut b) = (Vec::new(), Vec::new());
    for t in &data.triples {
        if subject_bucket(t, 5) == 0 {
            b.push(t.clone());
        } else {
            a.push(t.clone());
        }
    }
    // Split the delta pool: B1 is pending before the swap storm, B2 lands
    // mid-rebuild in phase 2.
    let b2: Vec<TermTriple> = b.iter().skip(1).step_by(3).cloned().collect();
    let b2_set: HashSet<&TermTriple> = b2.iter().collect();
    let b1: Vec<TermTriple> = b.iter().filter(|t| !b2_set.contains(t)).cloned().collect();
    assert!(!b1.is_empty() && !b2.is_empty());

    // Live: A organized, B1 pending in the delta store.
    let live = organized(&a);
    live.insert_terms(&b1).unwrap();
    let phase1: Vec<TermTriple> = a.iter().chain(b1.iter()).cloned().collect();
    let ref1 = organized(&phase1);
    let reference: Vec<Vec<Vec<String>>> = schemes()
        .iter()
        .map(|exec| answers(&ref1, *exec, None))
        .collect();

    // ---- phase 1: swap storm under 3 reader threads --------------------
    let stop = AtomicBool::new(false);
    let passes = AtomicUsize::new(0);
    let par = ParallelConfig {
        workers: 2,
        min_morsel_pages: 1,
        min_morsel_rows: 64,
    };
    std::thread::scope(|scope| {
        for reader in 0..3 {
            let (live, stop, passes, reference, par) = (&live, &stop, &passes, &reference, &par);
            scope.spawn(move || {
                // Thread 0: RDFscan. Thread 1: Default scheme. Thread 2:
                // RDFscan, morsel-parallel.
                let si = if reader == 2 { 0 } else { reader };
                let exec = schemes()[si];
                let parallel = (reader == 2).then_some(par);
                let want = &reference[si];
                loop {
                    let got = answers(live, exec, parallel);
                    for (qi, qid) in ALL_QUERIES.iter().enumerate() {
                        assert_eq!(
                            got[qi],
                            want[qi],
                            "{} diverged mid-swap (reader {reader})",
                            qid.name()
                        );
                        assert!(!got[qi].is_empty(), "{} returned nothing", qid.name());
                    }
                    passes.fetch_add(1, Ordering::Relaxed);
                    if stop.load(Ordering::Relaxed) {
                        return;
                    }
                }
            });
        }
        // Force full background reorganizations while the readers hammer.
        // The first swap folds B1 into the base; later ones keep swapping
        // renumbered generations in under the readers.
        for round in 0..3 {
            let outcome = live.reorganize_async().unwrap().wait().unwrap();
            assert!(
                outcome.swapped,
                "round {round}: nothing raced, the swap must land"
            );
        }
        assert_eq!(
            live.drift_stats().n_delta_inserts,
            0,
            "B1 folded by the first swap"
        );
        stop.store(true, Ordering::Relaxed);
    });
    assert!(
        passes.load(Ordering::Relaxed) >= 3,
        "every reader finished at least one pass"
    );

    // ---- phase 2: writes land mid-rebuild, the swap folds them ---------
    let mut seen: HashSet<&TermTriple> = HashSet::new();
    let deletions: Vec<TermTriple> = phase1
        .iter()
        .step_by(13)
        .filter(|t| seen.insert(*t))
        .cloned()
        .collect();
    let handle = live.reorganize_async().unwrap();
    // These writes arrive while the rebuild is (very likely still) running;
    // whether they beat the swap or not, the result must be identical.
    for chunk in b2.chunks(b2.len().div_ceil(3).max(1)) {
        live.insert_terms(chunk).unwrap();
    }
    let n_deleted = live.delete_triples(&deletions).unwrap();
    assert_eq!(
        n_deleted,
        deletions.len(),
        "every sampled triple was visible"
    );
    let outcome = handle.wait().unwrap();
    assert!(outcome.fired && outcome.swapped);

    let dead: HashSet<&TermTriple> = deletions.iter().collect();
    let final_set: Vec<TermTriple> = phase1
        .iter()
        .filter(|t| !dead.contains(t))
        .chain(b2.iter())
        .cloned()
        .collect();
    let ref_final = organized(&final_set);
    assert_eq!(live.n_triples(), ref_final.n_triples());
    for exec in schemes() {
        let want = answers(&ref_final, exec, None);
        for parallel in [None, Some(&par)] {
            let got = answers(&live, exec, parallel);
            for (qi, qid) in ALL_QUERIES.iter().enumerate() {
                assert_eq!(
                    got[qi],
                    want[qi],
                    "{} differs from fresh bulk load after the catch-up fold \
                     ({exec:?}, parallel={})",
                    qid.name(),
                    parallel.is_some()
                );
            }
        }
    }

    // One more reorg clusters the folded writes in; nothing may change.
    live.reorganize_now().unwrap();
    assert_eq!(live.drift_stats().n_delta_inserts, 0);
    let want = answers(&ref_final, ExecConfig::default(), None);
    assert_eq!(answers(&live, ExecConfig::default(), None), want);

    // The swap storm left every structural invariant intact — checked
    // explicitly so release-mode CI stress runs exercise the checkers that
    // debug builds run on the write path.
    live.validate_invariants();

    // With the runtime lock-order checker armed, the storm must have
    // recorded real acquisition edges (and panicked on no inversion).
    #[cfg(feature = "lock_order_check")]
    assert!(
        parking_lot::lock_order::edge_count() > 0,
        "lock-order checker armed but no acquisition edges recorded"
    );
}
