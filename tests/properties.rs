//! Property-based tests (proptest) over the core invariants:
//!
//! * OID inline encodings are order-preserving and roundtrip;
//! * the N-Triples writer/parser roundtrip is the identity;
//! * dictionary encoding roundtrips arbitrary terms;
//! * subject clustering (reorganize) is a bijective renaming: the decoded
//!   triple set is unchanged, and query answers are invariant across all
//!   plan schemes and storage generations on random graphs.

use proptest::prelude::*;
use sordf::{Database, ExecConfig, Generation, PlanScheme, QueryRequest};
use sordf_model::{ntriples, Dictionary, Oid, Term, TermTriple, Value};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        "[a-zA-Z0-9 ]{0,12}".prop_map(Value::str),
        (-1_000_000i64..1_000_000).prop_map(Value::Int),
        (-10_000_000i64..10_000_000).prop_map(Value::Decimal),
        (-30_000i64..60_000).prop_map(Value::Date),
        (-4_000_000_000i64..4_000_000_000).prop_map(Value::DateTime),
        any::<bool>().prop_map(Value::Bool),
    ]
}

fn arb_term() -> impl Strategy<Value = Term> {
    prop_oneof![
        (0u32..40).prop_map(|i| Term::iri(format!("http://t/e{i}"))),
        arb_value().prop_map(Term::literal),
    ]
}

fn arb_triple() -> impl Strategy<Value = TermTriple> {
    (
        (0u32..25).prop_map(|i| Term::iri(format!("http://t/s{i}"))),
        (0u32..6).prop_map(|i| Term::iri(format!("http://t/p{i}"))),
        arb_term(),
    )
        .prop_map(|(s, p, o)| TermTriple::new(s, p, o))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn oid_int_roundtrip_and_order(a in -4_000_000_000i64..4_000_000_000, b in -4_000_000_000i64..4_000_000_000) {
        let (oa, ob) = (Oid::from_int(a).unwrap(), Oid::from_int(b).unwrap());
        prop_assert_eq!(oa.as_int(), a);
        prop_assert_eq!(a.cmp(&b), oa.cmp(&ob));
    }

    #[test]
    fn oid_date_roundtrip_and_order(a in -100_000i64..100_000, b in -100_000i64..100_000) {
        let (oa, ob) = (Oid::from_date_days(a).unwrap(), Oid::from_date_days(b).unwrap());
        prop_assert_eq!(oa.as_date_days(), a);
        prop_assert_eq!(a.cmp(&b), oa.cmp(&ob));
    }

    #[test]
    fn decimal_lexical_roundtrip(u in -10_000_000i64..10_000_000) {
        let text = sordf_model::term::format_decimal(u);
        prop_assert_eq!(sordf_model::term::parse_decimal(&text), Some(u));
    }

    #[test]
    fn date_lexical_roundtrip(days in -100_000i64..100_000) {
        let text = sordf_model::date::format_date(days);
        prop_assert_eq!(sordf_model::date::parse_date(&text).unwrap(), days);
    }

    #[test]
    fn dictionary_roundtrips_terms(terms in proptest::collection::vec(arb_term(), 1..30)) {
        let dict = Dictionary::new();
        let oids: Vec<Oid> = terms.iter().map(|t| dict.encode_term(t).unwrap()).collect();
        for (t, o) in terms.iter().zip(&oids) {
            prop_assert_eq!(&dict.decode(*o).unwrap(), t);
        }
    }

    #[test]
    fn ntriples_roundtrip(triples in proptest::collection::vec(arb_triple(), 0..30)) {
        let mut buf = Vec::new();
        ntriples::write_document(&mut buf, &triples).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let parsed = ntriples::parse_document(&text).unwrap();
        prop_assert_eq!(parsed, triples);
    }
}

proptest! {
    // Heavier end-to-end properties with fewer cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Self-organization never changes the logical graph.
    #[test]
    fn reorganize_is_a_bijective_renaming(triples in proptest::collection::vec(arb_triple(), 1..80)) {
        let mut ts = sordf_storage::TripleSet::new();
        ts.extend_terms(&triples).unwrap();
        ts.dedup();
        let decode = |ts: &sordf_storage::TripleSet| -> Vec<(Term, Term, Term)> {
            let mut v: Vec<_> = ts.triples.iter().map(|t| (
                ts.dict.decode(t.s).unwrap(),
                ts.dict.decode(t.p).unwrap(),
                ts.dict.decode(t.o).unwrap(),
            )).collect();
            v.sort();
            v
        };
        let before = decode(&ts);
        let spo = ts.sorted_spo();
        let mut schema = sordf_schema::discover(&spo, &ts.dict, &sordf_schema::SchemaConfig::default());
        let spec = sordf_storage::ClusterSpec::auto(&schema);
        sordf_storage::reorganize(&mut ts, &mut schema, &spec);
        prop_assert_eq!(decode(&ts), before);
    }

    /// Query answers are invariant under plan scheme, storage generation
    /// and zone maps, on arbitrary graphs.
    #[test]
    fn query_equivalence_on_random_graphs(triples in proptest::collection::vec(arb_triple(), 5..80)) {
        // A two-pattern star on the most common predicates.
        let q = "SELECT ?s ?a ?b WHERE { ?s <http://t/p0> ?a . ?s <http://t/p1> ?b . }";

        let po = Database::in_temp_dir().unwrap();
        po.load_terms(&triples).unwrap();
        po.build_baseline().unwrap();
        po.build_cs_tables().unwrap();
        let cl = Database::in_temp_dir().unwrap();
        cl.load_terms(&triples).unwrap();
        cl.self_organize().unwrap();

        let runs = [
            (&po, Generation::Baseline, PlanScheme::Default, false),
            (&po, Generation::CsParseOrder, PlanScheme::RdfScanJoin, true),
            (&cl, Generation::Clustered, PlanScheme::Default, true),
            (&cl, Generation::Clustered, PlanScheme::RdfScanJoin, false),
            (&cl, Generation::Clustered, PlanScheme::RdfScanJoin, true),
        ];
        let mut reference: Option<Vec<String>> = None;
        for (db, generation, scheme, zm) in runs {
            let exec = ExecConfig { scheme, zonemaps: zm, ..Default::default() };
            let rs = db
                .execute(&QueryRequest::sparql(q).generation(generation).config(exec))
                .unwrap()
                .results;
            let canon = rs.canonical(&db.dict());
            match &reference {
                None => reference = Some(canon),
                Some(r) => prop_assert_eq!(&canon, r),
            }
        }
    }
}
