//! Crash-recovery differential suite: a durable database killed at random
//! points (and, with `--features crash_points`, at *every* labeled
//! WAL/snapshot/manifest boundary) must recover to a state that equals a
//! prefix of the write history — and the prefix must cover every write that
//! was acknowledged before the kill.
//!
//! Mechanics: the parent test re-execs its own test binary to run
//! [`child_writer_process`] against a shared directory. The child opens
//! (recovering on every respawn), organizes on first contact, then appends
//! deterministic batches — each one `insert_terms` call, so one WAL record —
//! printing `ACK <i>` only after the call returns (under
//! [`SyncPolicy::Always`] that means the record is fsync'd). Interleaved
//! `reorganize_now` and `checkpoint` calls exercise the swap and rotation
//! protocols under fire. The parent SIGKILLs the child after a ramped
//! delay, reopens the directory, and checks the invariant:
//!
//! * recovered batches form a contiguous prefix `0..k`;
//! * `k` is at least one past the highest acknowledged batch;
//! * the triple count is exactly what that prefix implies (nothing torn,
//!   nothing duplicated — replaying a `Load`/`Insert` record twice would
//!   show up here).

use std::io::BufRead;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::time::Duration;

use sordf::{Database, SyncPolicy, WalFormat};
use sordf_model::{Term, TermTriple};

const MARKER: &str = "http://ex/recovery/marker";
const N_BATCHES: usize = 60;
/// Triples per batch besides the marker.
const FILLERS: usize = 5;
const CHILD_ENV: &str = "SORDF_RECOVERY_CHILD";
/// Set to `binary` to make the child write [`WalFormat::Binary`] records;
/// recovery itself is format-agnostic (it auto-detects per record).
const FORMAT_ENV: &str = "SORDF_WAL_FORMAT";

fn base_data() -> Vec<TermTriple> {
    let mut triples = Vec::new();
    for i in 0..40u64 {
        let s = format!("http://ex/item{i}");
        triples.push(TermTriple::new(
            Term::iri(s.clone()),
            Term::iri("http://ex/qty"),
            Term::int((i % 10) as i64),
        ));
        triples.push(TermTriple::new(
            Term::iri(s),
            Term::iri("http://ex/sold"),
            Term::date(&format!("1996-01-{:02}", (i % 28) + 1)),
        ));
    }
    triples
}

fn batch(i: usize) -> Vec<TermTriple> {
    // Zero-padded so no subject IRI is a prefix of another (the contiguity
    // check below matches rendered rows by substring).
    let s = format!("http://ex/recovery/b{i:04}");
    let mut out = vec![TermTriple::new(
        Term::iri(s.clone()),
        Term::iri(MARKER),
        Term::int(i as i64),
    )];
    for j in 0..FILLERS {
        out.push(TermTriple::new(
            Term::iri(s.clone()),
            Term::iri(format!("http://ex/recovery/p{j}")),
            Term::int((i * FILLERS + j) as i64),
        ));
    }
    out
}

/// Count of recovered batches, asserting they form a contiguous prefix and
/// that the store holds exactly the triples that prefix implies.
fn verify_prefix(db: &Database, min_batches: i64) -> usize {
    if db.schema().is_none() {
        // Killed before the first self_organize checkpoint committed: no
        // layouts recovered, so no batch can have been acknowledged yet.
        assert!(
            min_batches < 0,
            "acknowledged batches but no organized layout recovered"
        );
        return 0;
    }
    let rs = db
        .query(&format!("SELECT ?s ?i WHERE {{ ?s <{MARKER}> ?i . }}"))
        .expect("marker query");
    let k = rs.len();
    let rows = rs.canonical(&db.dict());
    for i in 0..k {
        let s = format!("http://ex/recovery/b{i:04}");
        assert!(
            rows.iter().any(|r| r.contains(&s)),
            "batches are not a contiguous prefix: {k} markers but batch {i} missing\n{rows:?}"
        );
    }
    assert!(
        (k as i64) > min_batches,
        "lost acknowledged writes: {} acked, only {k} batches recovered",
        min_batches + 1
    );
    assert_eq!(
        db.n_triples(),
        base_data().len() + k * (1 + FILLERS),
        "triple count disagrees with a clean prefix of {k} batches"
    );
    k
}

/// The re-exec'd writer. A no-op unless [`CHILD_ENV`] points at the target
/// directory (so plain `cargo test` skips it).
#[test]
fn child_writer_process() {
    let Ok(dir) = std::env::var(CHILD_ENV) else {
        return;
    };
    let dir = PathBuf::from(dir);
    let db = Database::open(&dir).expect("child open");
    if std::env::var(FORMAT_ENV).as_deref() == Ok("binary") {
        db.set_wal_format(WalFormat::Binary);
        assert_eq!(db.wal_format(), Some(WalFormat::Binary));
    }
    if db.schema().is_none() {
        if db.n_triples() == 0 {
            db.load_terms(&base_data()).expect("child base load");
        }
        db.self_organize().expect("child organize");
        println!("ORG");
    }
    let done = db
        .query(&format!("SELECT ?s WHERE {{ ?s <{MARKER}> ?i . }}"))
        .expect("child marker query")
        .len();
    for i in done..N_BATCHES {
        db.insert_terms(&batch(i)).expect("child insert");
        // Acknowledged: under SyncPolicy::Always the WAL record is on disk.
        println!("ACK {i}");
        if i % 6 == 2 {
            db.reorganize_now().expect("child reorganize");
        }
        if i % 9 == 4 {
            db.checkpoint().expect("child checkpoint");
        }
    }
    println!("DONE");
}

enum Event {
    Ack(i64),
    Done,
    Eof,
}

fn spawn_child(
    dir: &Path,
    crash_point: Option<&str>,
    format: Option<&str>,
) -> (Child, mpsc::Receiver<Event>) {
    let exe = std::env::current_exe().expect("current_exe");
    let mut cmd = Command::new(exe);
    cmd.arg("child_writer_process")
        .arg("--exact")
        .arg("--nocapture")
        .env(CHILD_ENV, dir)
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    match format {
        Some(f) => cmd.env(FORMAT_ENV, f),
        None => cmd.env_remove(FORMAT_ENV),
    };
    match crash_point {
        Some(label) => cmd
            .env("SORDF_CRASH_POINT", label)
            .env("SORDF_CRASH_HITS", "1"),
        None => cmd
            .env_remove("SORDF_CRASH_POINT")
            .env_remove("SORDF_CRASH_HITS"),
    };
    let mut child = cmd.spawn().expect("spawn child");
    let stdout = child.stdout.take().expect("child stdout");
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let reader = std::io::BufReader::new(stdout);
        for line in reader.lines() {
            let Ok(line) = line else { break };
            if let Some(n) = line.strip_prefix("ACK ") {
                if let Ok(n) = n.trim().parse::<i64>() {
                    let _ = tx.send(Event::Ack(n));
                }
            } else if line.trim() == "DONE" {
                let _ = tx.send(Event::Done);
            }
        }
        let _ = tx.send(Event::Eof);
    });
    (child, rx)
}

fn temp_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    // ordering: Relaxed — unique temp names only.
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("sordf-recovery-{tag}-{}-{n}", std::process::id()))
}

struct Cleanup(PathBuf);
impl Drop for Cleanup {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The crash loop: SIGKILL the writer at pseudo-random (schedule-jittered)
/// points, verifying the prefix invariant after every kill. A killed
/// writer is respawned and resumes from the recovered prefix; once it
/// completes, the directory is wiped and a fresh cycle starts, until
/// enough mid-run kills have been witnessed. The delay ramps slowly so a
/// completion (and thus termination) is guaranteed.
#[test]
fn crash_loop_loses_no_acknowledged_write() {
    crash_loop("loop", None);
}

/// The same crash loop with the child writing [`WalFormat::Binary`]
/// records — the varint term-table framing must uphold the identical
/// durability contract (and mixed-format logs arise naturally here, since
/// recovery-created WALs start in text until the child switches back).
#[test]
fn crash_loop_loses_no_acknowledged_write_binary_wal() {
    crash_loop("loop-bin", Some("binary"));
}

fn crash_loop(tag: &str, format: Option<&str>) {
    let dir = temp_dir(tag);
    let _c = Cleanup(dir.clone());
    let mut max_ack: i64 = -1;
    let mut lcg: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut kills = 0u32;
    let mut completions = 0u32;
    // Adaptive kill window: a completion means the kill landed too late
    // (shrink it), a mid-run kill means it landed (grow it back toward a
    // completion) — so the schedule brackets the child's actual runtime at
    // any build speed. A fixed ramp cannot: release children finish in
    // single-digit milliseconds, debug children in hundreds.
    let mut window_us: u64 = 20_000;
    for iter in 0u64.. {
        assert!(
            iter < 150,
            "crash loop made no progress ({kills} kills, {completions} completions)"
        );
        if kills >= 5 && completions >= 1 {
            break;
        }
        let (mut child, rx) = spawn_child(&dir, None, format);
        lcg = lcg
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let delay = window_us / 2 + (lcg >> 33) % window_us.max(1);
        std::thread::sleep(Duration::from_micros(delay));
        child.kill().expect("kill child");
        child.wait().expect("reap child");
        let mut done = false;
        // Drain everything the child got out before the kill.
        while let Ok(ev) = rx.recv_timeout(Duration::from_secs(10)) {
            match ev {
                Event::Ack(n) => max_ack = max_ack.max(n),
                Event::Done => done = true,
                Event::Eof => break,
            }
        }
        let db = Database::open(&dir).expect("parent reopen");
        let k = verify_prefix(&db, max_ack);
        drop(db);
        if done {
            assert_eq!(k, N_BATCHES, "DONE printed but batches missing");
            completions += 1;
            window_us = (window_us / 3).max(500);
            // Fresh cycle: wipe so the next writer starts from zero (a
            // resumed writer has ever less work and outruns the kill).
            std::fs::remove_dir_all(&dir).expect("wipe between cycles");
            max_ack = -1;
        } else {
            // The next spawn resumes from k; keep the floor monotone.
            max_ack = max_ack.max(k as i64 - 1);
            kills += 1;
            window_us = window_us.saturating_mul(3) / 2;
        }
    }
    assert!(
        kills >= 5 && completions >= 1,
        "kills={kills} completions={completions}"
    );
}

/// Deterministic fault coverage: abort the writer at every labeled crash
/// point (WAL append/sync, snapshot sync, manifest rename, checkpoint and
/// swap commit), then recover and verify, then let it run to completion.
/// Needs the `crash_points` feature, which compiles the labels in.
#[cfg(feature = "crash_points")]
#[test]
fn every_crash_point_recovers() {
    for (i, &label) in sordf::CRASH_POINTS.iter().enumerate() {
        // Alternate WAL formats across the labels: both encodings meet
        // every fault boundary without doubling the run.
        let format = if i % 2 == 0 { None } else { Some("binary") };
        let dir = temp_dir(&label.replace('.', "-"));
        let _c = Cleanup(dir.clone());
        let (mut child, rx) = spawn_child(&dir, Some(label), format);
        let status = child.wait().expect("reap child");
        let mut max_ack: i64 = -1;
        while let Ok(ev) = rx.recv_timeout(Duration::from_secs(60)) {
            match ev {
                Event::Ack(n) => max_ack = max_ack.max(n),
                Event::Done | Event::Eof => break,
            }
        }
        assert!(
            !status.success(),
            "crash point {label} was never hit (writer exited cleanly)"
        );
        {
            let db = Database::open(&dir)
                .unwrap_or_else(|e| panic!("recovery after abort at {label}: {e}"));
            verify_prefix(&db, max_ack);
        }
        // A clean rerun must finish the job from wherever the abort left it.
        let (mut child, rx) = spawn_child(&dir, None, format);
        let status = child.wait().expect("reap clean child");
        assert!(status.success(), "clean rerun after {label} failed");
        drop(rx);
        let db = Database::open(&dir).expect("final open");
        let k = verify_prefix(&db, max_ack);
        assert_eq!(
            k, N_BATCHES,
            "clean rerun after {label} left batches missing"
        );
    }
}

/// Generation GC: sustained write → reorganize cycles must not grow the
/// page file without bound. The swapped-out generation's extents return to
/// the free list when its last pin drops, and the next build reuses them —
/// so the high-water mark plateaus after the first couple of swaps.
#[test]
fn generation_gc_bounds_page_file_growth() {
    let db = Database::in_temp_dir().unwrap();
    db.load_terms(&base_data()).unwrap();
    db.self_organize().unwrap();
    let mut high_water = Vec::new();
    for round in 0..7usize {
        db.insert_terms(&batch(round)).unwrap();
        db.reorganize_now().unwrap();
        high_water.push(db.disk_pages().0);
    }
    let after_two = high_water[1];
    let final_hw = *high_water.last().unwrap();
    assert!(
        final_hw <= after_two + 8,
        "page file grows without bound across swaps: {high_water:?}"
    );
    let (hw, free) = db.disk_pages();
    assert!(
        free > 0 && (free as u64) < hw,
        "free list should hold the retired generation's pages: hw={hw} free={free}"
    );
    // The durable round-trip of that same churn: open a durable store, do
    // the cycles, and make sure recovery agrees with the live answers.
    let dir = temp_dir("gc-durable");
    let _c = Cleanup(dir.clone());
    let want = {
        let db = Database::create_durable(&dir, SyncPolicy::Always).unwrap();
        db.load_terms(&base_data()).unwrap();
        db.self_organize().unwrap();
        for round in 0..5usize {
            db.insert_terms(&batch(round)).unwrap();
            db.reorganize_now().unwrap();
        }
        db.n_triples()
    };
    let db = Database::open(&dir).unwrap();
    assert_eq!(db.n_triples(), want, "durable churn survived reopen");
}
