//! Fig. 1's architecture claim: SQL and SPARQL frontends over the same
//! self-organized store must agree.

use sordf::Database;
use sordf_model::{Term, TermTriple};
use sordf_rdfh::{generate, RdfhConfig};

fn rdfh_db() -> Database {
    let data = generate(&RdfhConfig::new(0.001));
    let db = Database::in_temp_dir().unwrap();
    db.load_terms(&data.triples).unwrap();
    db.self_organize().unwrap();
    db
}

#[test]
fn q6_sql_equals_sparql() {
    let db = rdfh_db();
    let sparql = db
        .query(sordf_rdfh::query(sordf_rdfh::QueryId::Q6))
        .unwrap();
    let sql = db
        .sql(
            "SELECT SUM(lineitem_extendedprice * lineitem_discount) AS revenue \
             FROM lineitem \
             WHERE lineitem_shipdate >= DATE '1994-01-01' \
               AND lineitem_shipdate < DATE '1995-01-01' \
               AND lineitem_discount BETWEEN 0.05 AND 0.07 \
               AND lineitem_quantity < 24",
        )
        .unwrap();
    assert_eq!(sparql.render(&db.dict()), sql.render(&db.dict()));
}

#[test]
fn fk_join_counts_agree() {
    let db = rdfh_db();
    let sparql = db
        .query(
            r#"PREFIX rdfh: <http://lod2.eu/schemas/rdfh#>
               SELECT (COUNT(*) AS ?n) WHERE {
                 ?o rdfh:order_custkey ?c .
                 ?c rdfh:customer_mktsegment "BUILDING" .
               }"#,
        )
        .unwrap();
    let sql = db
        .sql(
            "SELECT COUNT(*) AS n FROM order o \
             JOIN customer c ON o.order_custkey = c.subject \
             WHERE customer_mktsegment = 'BUILDING'",
        )
        .unwrap();
    assert_eq!(sparql.render(&db.dict()), sql.render(&db.dict()));
    let n: f64 = sparql.render(&db.dict())[0][0].parse().unwrap();
    assert!(n > 0.0, "the join must find orders");
}

#[test]
fn sql_segment_restriction_prevents_class_leaks() {
    // customer_name and supplier_name are different predicates, but both
    // classes have a 'type' column; a scan of `customer` must never return
    // suppliers even when only shared-name columns are referenced.
    let db = rdfh_db();
    let customers = db.sql("SELECT type FROM customer").unwrap();
    let schema = db.schema().unwrap();
    let n_cust = schema.class_by_name("customer").unwrap().n_subjects as usize;
    assert_eq!(customers.len(), n_cust);
}

#[test]
fn sql_view_sees_pending_inserts() {
    // A subject inserted after self_organize() lives in the delta, outside
    // every class segment's dense OID range. The incremental assigner routes
    // it to `customer` (full property-set match), and the SQL compiler must
    // widen the segment restriction so the row is visible *before* the next
    // reorganization — while still excluding unrouted (irregular) subjects.
    let db = rdfh_db();
    let n_before = db.sql("SELECT customer_name FROM customer").unwrap().len();

    let ns = "http://lod2.eu/schemas/rdfh#";
    let subj = Term::iri(format!("{ns}customer999999"));
    let pred = |p: &str| Term::iri(format!("{ns}{p}"));
    db.insert_terms(&[
        TermTriple::new(
            subj.clone(),
            Term::iri(sordf_model::vocab::RDF_TYPE),
            Term::iri(format!("{ns}customer")),
        ),
        TermTriple::new(
            subj.clone(),
            pred("customer_name"),
            Term::str("Customer#999999"),
        ),
        TermTriple::new(
            subj.clone(),
            pred("customer_mktsegment"),
            Term::str("BUILDING"),
        ),
        TermTriple::new(
            subj.clone(),
            pred("customer_nationkey"),
            Term::iri(format!("{ns}nation0")),
        ),
        TermTriple::new(
            subj.clone(),
            pred("customer_acctbal"),
            Term::decimal_f64(1.5),
        ),
    ])
    .unwrap();
    // An irregular subject (no class matches) must stay outside the view.
    db.insert_terms(&[TermTriple::new(
        Term::iri(format!("{ns}mystery1")),
        pred("mystery_prop"),
        Term::str("x"),
    )])
    .unwrap();

    let rows = db.sql("SELECT customer_name FROM customer").unwrap();
    assert_eq!(rows.len(), n_before + 1, "routed insert joins the SQL view");
    let hit = db
        .sql("SELECT customer_mktsegment FROM customer WHERE customer_name = 'Customer#999999'")
        .unwrap();
    assert_eq!(hit.render(&db.dict()), vec![vec!["BUILDING".to_string()]]);

    // SQL and SPARQL still agree over the live (base + delta) data.
    let sparql = db
        .query(
            r#"PREFIX rdfh: <http://lod2.eu/schemas/rdfh#>
               SELECT (COUNT(*) AS ?n) WHERE { ?c rdfh:customer_name ?x }"#,
        )
        .unwrap();
    let n: usize = sparql.render(&db.dict())[0][0].parse().unwrap();
    assert_eq!(n, rows.len(), "SPARQL and SQL see the same customers");
}

#[test]
fn sql_errors_are_reported() {
    let db = rdfh_db();
    assert!(db.sql("SELECT nope FROM lineitem").is_err());
    assert!(db.sql("SELECT * FROM not_a_table").is_err());
    assert!(db.sql("SELEKT x FROM lineitem").is_err());
}
