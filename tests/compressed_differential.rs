//! Scan-on-compressed correctness: every RDF-H catalog query must return a
//! byte-identical canonical `ResultSet` whether the store's pages are
//! frame-of-reference compressed (the default) or plain, across the
//! sequential, parallel, and rowwise-oracle executors and both plan schemes.

use sordf::{
    ColumnEncoding, Database, ExecConfig, Generation, ParallelConfig, PlanScheme, QueryRequest,
};
use sordf_rdfh::{generate, query, RdfhConfig, ALL_QUERIES};

struct Rig {
    plain: Database,
    compressed: Database,
}

fn clustered_rig() -> Rig {
    let data = generate(&RdfhConfig::new(0.001));
    let plain = Database::in_temp_dir().unwrap();
    plain.set_encoding(ColumnEncoding::Plain);
    plain.load_terms(&data.triples).unwrap();
    plain.self_organize().unwrap();
    assert_eq!(plain.encoding(), ColumnEncoding::Plain);
    let compressed = Database::in_temp_dir().unwrap();
    compressed.load_terms(&data.triples).unwrap();
    compressed.self_organize().unwrap();
    assert_eq!(compressed.encoding(), ColumnEncoding::Compressed);
    Rig { plain, compressed }
}

/// Seq / parallel / rowwise × both plan schemes, on one database.
fn run_all_executors(db: &Database, sparql: &str, qname: &str) -> Vec<Vec<String>> {
    let par = ParallelConfig::default();
    let mut out = Vec::new();
    for scheme in [PlanScheme::Default, PlanScheme::RdfScanJoin] {
        let exec = ExecConfig {
            scheme,
            ..Default::default()
        };
        let req = QueryRequest::sparql(sparql)
            .generation(Generation::Clustered)
            .config(exec);
        let seq = db
            .execute(&req)
            .unwrap_or_else(|e| panic!("{qname} seq {scheme:?}: {e}"))
            .results;
        out.push(seq.canonical(&db.dict()));
        let parallel = db
            .execute(&req.clone().parallel(par))
            .unwrap_or_else(|e| panic!("{qname} parallel {scheme:?}: {e}"));
        out.push(parallel.results.canonical(&db.dict()));
        let rowwise = db
            .execute(&req.clone().config(ExecConfig {
                rowwise: true,
                ..exec
            }))
            .unwrap_or_else(|e| panic!("{qname} rowwise {scheme:?}: {e}"))
            .results;
        out.push(rowwise.canonical(&db.dict()));
    }
    out
}

#[test]
fn all_queries_identical_compressed_vs_plain() {
    let rig = clustered_rig();
    for qid in ALL_QUERIES {
        let sparql = query(qid);
        let plain = run_all_executors(&rig.plain, sparql, qid.name());
        let compressed = run_all_executors(&rig.compressed, sparql, qid.name());
        assert_eq!(
            plain.len(),
            compressed.len(),
            "{} executor matrix mismatch",
            qid.name()
        );
        for (i, (p, c)) in plain.iter().zip(&compressed).enumerate() {
            assert_eq!(
                p,
                c,
                "{} config {i}: compressed differs from plain",
                qid.name()
            );
        }
        // All executors agree with each other too, not just pairwise.
        assert!(
            plain.iter().all(|r| r == &plain[0]),
            "{} executors disagree on the plain store",
            qid.name()
        );
        assert!(!plain[0].is_empty(), "{} returned nothing", qid.name());
    }
}

#[test]
fn baseline_and_cs_generations_identical_compressed_vs_plain() {
    let data = generate(&RdfhConfig::new(0.001));
    let mk = |enc: ColumnEncoding| {
        let db = Database::in_temp_dir().unwrap();
        db.set_encoding(enc);
        db.load_terms(&data.triples).unwrap();
        db.build_baseline().unwrap();
        db.build_cs_tables().unwrap();
        assert_eq!(db.encoding(), enc);
        db
    };
    let plain = mk(ColumnEncoding::Plain);
    let compressed = mk(ColumnEncoding::Compressed);
    for qid in ALL_QUERIES {
        let sparql = query(qid);
        for (generation, scheme) in [
            (Generation::Baseline, PlanScheme::Default),
            (Generation::CsParseOrder, PlanScheme::RdfScanJoin),
        ] {
            let exec = ExecConfig {
                scheme,
                ..Default::default()
            };
            let req = QueryRequest::sparql(sparql)
                .generation(generation)
                .config(exec);
            let p = plain.execute(&req).unwrap().results;
            let c = compressed.execute(&req).unwrap().results;
            assert_eq!(
                p.canonical(&plain.dict()),
                c.canonical(&compressed.dict()),
                "{} {generation:?} differs",
                qid.name()
            );
        }
    }
}

#[test]
fn reencode_in_place_flips_scheme_and_answers() {
    // A store built plain re-encodes to compressed via reorganize_now and
    // keeps answering identically (the upgrade path for existing stores).
    let data = generate(&RdfhConfig::new(0.001));
    let db = Database::in_temp_dir().unwrap();
    db.set_encoding(ColumnEncoding::Plain);
    db.load_terms(&data.triples).unwrap();
    db.self_organize().unwrap();
    let q = query(sordf_rdfh::QueryId::Q6);
    let before = db.query(q).unwrap().canonical(&db.dict());
    db.set_encoding(ColumnEncoding::Compressed);
    db.reorganize_now().unwrap();
    assert_eq!(db.encoding(), ColumnEncoding::Compressed);
    assert_eq!(db.query(q).unwrap().canonical(&db.dict()), before);
}
