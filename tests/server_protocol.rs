//! End-to-end exercise of the HTTP front end over real TCP sockets: protocol
//! round-trips against direct library execution, the error taxonomy on the
//! wire (400 with caret, 408, 503 + Retry-After), admission control under
//! burst, graceful drain, and the engine-level proof that a cancelled query
//! stops within a bounded number of pages.

use sordf::{Database, QueryRequest};
use sordf_engine::{CancellationToken, ExecConfig, ExecContext, StopReason, StorageRef};
use sordf_rdfh::{generate, RdfhConfig};
use sordf_server::{Server, ServerConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

const NS: &str = "http://lod2.eu/schemas/rdfh#";

/// A self-join over lineitem quantities: small output (COUNT), lots of
/// intermediate work — the workhorse for timeout/cancellation/drain tests.
fn heavy_query() -> String {
    format!(
        "PREFIX rdfh: <{NS}>\n\
         SELECT (COUNT(*) AS ?n) WHERE {{\n\
           ?a rdfh:lineitem_quantity ?x .\n\
           ?b rdfh:lineitem_quantity ?x .\n\
           ?a rdfh:lineitem_discount ?d .\n\
         }}"
    )
}

fn served_db() -> Arc<Database> {
    let data = generate(&RdfhConfig::new(0.002));
    let db = Database::in_temp_dir().unwrap();
    db.load_terms(&data.triples).unwrap();
    db.self_organize().unwrap();
    Arc::new(db)
}

fn start(db: Arc<Database>, cfg: ServerConfig) -> (Server, String) {
    let server = Server::bind(db, cfg).unwrap();
    let addr = server.local_addr().unwrap().to_string();
    (server, addr)
}

// ---- tiny blocking HTTP client ---------------------------------------------

struct Resp {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl Resp {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

fn read_response(stream: &mut TcpStream) -> Resp {
    let mut buf = Vec::new();
    let head_end = loop {
        if let Some(i) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break i;
        }
        let mut chunk = [0u8; 4096];
        let n = stream.read(&mut chunk).unwrap();
        assert!(n > 0, "connection closed before response head");
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap();
    let status: u16 = status_line.split(' ').nth(1).unwrap().parse().unwrap();
    let headers: Vec<(String, String)> = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.trim().to_string(), v.trim().to_string()))
        .collect();
    let content_len: usize = headers
        .iter()
        .find(|(n, _)| n.eq_ignore_ascii_case("content-length"))
        .map(|(_, v)| v.parse().unwrap())
        .unwrap_or(0);
    let body_start = head_end + 4;
    while buf.len() < body_start + content_len {
        let mut chunk = [0u8; 4096];
        let n = stream.read(&mut chunk).unwrap();
        assert!(n > 0, "connection closed mid-body");
        buf.extend_from_slice(&chunk[..n]);
    }
    Resp {
        status,
        headers,
        body: String::from_utf8_lossy(&buf[body_start..body_start + content_len]).into_owned(),
    }
}

fn raw_request(addr: &str, head_and_body: &str) -> Resp {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(head_and_body.as_bytes()).unwrap();
    read_response(&mut stream)
}

fn urlencode(s: &str) -> String {
    let mut out = String::new();
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            b' ' => out.push('+'),
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

fn http_get(addr: &str, path_and_query: &str, accept: Option<&str>) -> Resp {
    let accept_line = accept
        .map(|a| format!("Accept: {a}\r\n"))
        .unwrap_or_default();
    raw_request(
        addr,
        &format!("GET {path_and_query} HTTP/1.1\r\nHost: t\r\n{accept_line}\r\n"),
    )
}

fn http_post(addr: &str, path_and_query: &str, content_type: &str, body: &str) -> Resp {
    raw_request(
        addr,
        &format!(
            "POST {path_and_query} HTTP/1.1\r\nHost: t\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

/// Pull a numeric field out of a (flat-enough) JSON body.
fn json_num(body: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let at = body.find(&pat).unwrap_or_else(|| panic!("{key} in {body}"));
    body[at + pat.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap()
}

// ---- the tests --------------------------------------------------------------

#[test]
fn round_trip_matches_direct_execution() {
    let db = served_db();
    let (server, addr) = start(Arc::clone(&db), ServerConfig::default());
    let sparql =
        format!("PREFIX rdfh: <{NS}>\nSELECT ?n WHERE {{ ?c rdfh:customer_name ?n }} ORDER BY ?n");

    // Direct library execution is the reference.
    let direct = db.execute(&QueryRequest::sparql(&sparql)).unwrap();
    let expected = direct.results.render(&direct.pin);

    // GET + TSV must agree row for row.
    let tsv = http_get(
        &addr,
        &format!("/query?query={}", urlencode(&sparql)),
        Some("text/tab-separated-values"),
    );
    assert_eq!(tsv.status, 200);
    let mut lines = tsv.body.lines();
    assert_eq!(lines.next(), Some("n"), "TSV header row");
    let got: Vec<Vec<String>> = lines
        .map(|l| l.split('\t').map(str::to_string).collect())
        .collect();
    assert_eq!(got, expected, "TSV rows == direct execution");

    // POST (raw body) + JSON: every value appears, bindings count matches.
    let json = http_post(&addr, "/query", "application/sparql-query", &sparql);
    assert_eq!(json.status, 200);
    assert!(json.body.starts_with("{\"head\":{\"vars\":[\"n\"]}"));
    assert_eq!(
        json.body.matches("Customer#").count(),
        expected.len(),
        "JSON bindings == direct execution"
    );

    // Form-encoded POST with lang=sql goes through the SQL front end.
    let sql = "SELECT customer_name FROM customer ORDER BY customer_name";
    let form = format!("query={}&lang=sql", urlencode(sql));
    let via_sql = http_post(&addr, "/query", "application/x-www-form-urlencoded", &form);
    assert_eq!(via_sql.status, 200);
    assert_eq!(
        via_sql.body.matches("Customer#").count(),
        expected.len(),
        "SQL view sees the same customers"
    );

    // Tracing adds executor stats to the JSON document.
    let traced = http_get(
        &addr,
        &format!("/query?query={}&trace=1", urlencode(&sparql)),
        None,
    );
    assert_eq!(traced.status, 200);
    assert!(json_num(&traced.body, "rows_scanned") > 0);
    server.shutdown();
}

#[test]
fn parse_error_returns_400_with_caret() {
    let (server, addr) = start(served_db(), ServerConfig::default());
    let bad = "SELECT ?x WHERE { ?x broken";
    let resp = http_get(&addr, &format!("/query?query={}", urlencode(bad)), None);
    assert_eq!(resp.status, 400);
    assert!(
        resp.body.contains("\"code\":\"parse_error\""),
        "{}",
        resp.body
    );
    // The caret rendering (line/column + ^ marker) rides in "detail".
    assert!(resp.body.contains("line 1"), "{}", resp.body);
    assert!(resp.body.contains("^"), "{}", resp.body);

    // Missing query entirely.
    let none = http_get(&addr, "/query", None);
    assert_eq!(none.status, 400);
    assert!(none.body.contains("missing query"));

    // Unknown endpoints and wrong methods.
    assert_eq!(http_get(&addr, "/nope", None).status, 404);
    assert_eq!(http_get(&addr, "/update", None).status, 405);
    server.shutdown();
}

#[test]
fn timeout_returns_408_and_server_survives() {
    let (server, addr) = start(served_db(), ServerConfig::default());
    let resp = http_get(
        &addr,
        &format!("/query?query={}&timeout_ms=1", urlencode(&heavy_query())),
        None,
    );
    assert_eq!(resp.status, 408, "{}", resp.body);
    assert!(resp.body.contains("\"code\":\"timeout\""));

    // The same query without a deadline still completes afterwards.
    let ok = http_get(
        &addr,
        &format!("/query?query={}", urlencode(&heavy_query())),
        None,
    );
    assert_eq!(ok.status, 200, "{}", ok.body);

    let status = http_get(&addr, "/status", None);
    assert_eq!(status.status, 200);
    assert!(json_num(&status.body, "timeouts") >= 1);
    server.shutdown();
}

#[test]
fn overload_burst_returns_503_with_retry_after() {
    let db = served_db();
    let cfg = ServerConfig {
        workers: 4,
        max_in_flight: 1,
        ..ServerConfig::default()
    };
    let (server, addr) = start(db, cfg);

    let quick = format!(
        "/query?query={}",
        urlencode(&format!(
            "PREFIX rdfh: <{NS}>\nSELECT ?n WHERE {{ ?c rdfh:customer_name ?n }}"
        ))
    );
    // The slot is held for the blocker's whole execution, so any query
    // arriving while `/status` (which bypasses admission) reports it in
    // flight must bounce with 503. On a heavily loaded box a blocker can
    // finish before the burst lands — re-arm with a fresh blocker until one
    // is caught mid-flight.
    let mut saw_503 = None;
    'attempts: for _ in 0..50 {
        let addr2 = addr.clone();
        let blocker = std::thread::spawn(move || {
            http_get(
                &addr2,
                &format!("/query?query={}", urlencode(&heavy_query())),
                None,
            )
        });
        loop {
            let status = http_get(&addr, "/status", None);
            let in_flight = json_num(&status.body, "in_flight");
            if in_flight >= 1 {
                let r = http_get(&addr, &quick, None);
                if r.status == 503 {
                    saw_503 = Some(r);
                    let blocked = blocker.join().unwrap();
                    assert_eq!(blocked.status, 200, "the admitted query still completes");
                    break 'attempts;
                }
                // A 200 means the slot freed between the status read and
                // the request landing — observe again.
            } else if blocker.is_finished() {
                // Missed this blocker entirely; arm another.
                let _ = blocker.join();
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    let rejected = saw_503.expect("burst against a full server must hit 503");
    assert!(rejected.body.contains("\"code\":\"overloaded\""));
    assert_eq!(rejected.header("Retry-After"), Some("1"));

    let status = http_get(&addr, "/status", None);
    assert!(json_num(&status.body, "rejected") >= 1);
    server.shutdown();
}

#[test]
fn graceful_drain_finishes_in_flight_work() {
    let db = served_db();
    let (server, addr) = start(db, ServerConfig::default());

    let addr2 = addr.clone();
    let in_flight = std::thread::spawn(move || {
        http_get(
            &addr2,
            &format!("/query?query={}", urlencode(&heavy_query())),
            None,
        )
    });
    // Give the request time to be admitted, then drain.
    std::thread::sleep(Duration::from_millis(30));
    server.shutdown();

    // The in-flight query was served to completion, not chopped.
    let resp = in_flight.join().unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);

    // New connections find nobody accepting: the connect is refused, or (if
    // the OS still had the socket in its backlog) nothing ever answers.
    let outcome = match TcpStream::connect(&addr) {
        Err(_) => Ok(()), // refused — listener is gone
        Ok(mut s) => {
            let _ = s.set_read_timeout(Some(Duration::from_millis(500)));
            let _ = s.write_all(b"GET /status HTTP/1.1\r\nHost: t\r\n\r\n");
            let mut buf = [0u8; 1];
            match s.read(&mut buf) {
                Ok(0) => Ok(()), // accepted then closed
                Ok(_) => Err("served after shutdown"),
                Err(_) => Ok(()), // no worker answered
            }
        }
    };
    assert!(outcome.is_ok(), "{outcome:?}");
}

#[test]
fn client_disconnect_cancels_in_flight_query() {
    let db = served_db();
    let (server, addr) = start(Arc::clone(&db), ServerConfig::default());

    // Fire the heavy query and hang up immediately.
    {
        let mut s = TcpStream::connect(&addr).unwrap();
        let q = format!("/query?query={}", urlencode(&heavy_query()));
        s.write_all(format!("GET {q} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
            .unwrap();
        // Dropping the stream sends FIN/RST; the watchdog notices.
    }

    // The watchdog cancels within a few poll ticks.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let status = http_get(&addr, "/status", None);
        if json_num(&status.body, "cancelled") >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "disconnect was never noticed: {}",
            status.body
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    server.shutdown();
}

#[test]
fn update_roundtrip_and_status() {
    let db = served_db();
    let (server, addr) = start(Arc::clone(&db), ServerConfig::default());
    let nt = format!(
        "<{NS}customer424242> <{NS}customer_name> \"Customer#424242\" .\n\
         <{NS}customer424242> <{NS}customer_mktsegment> \"BUILDING\" .\n"
    );
    let ins = http_post(&addr, "/update?action=insert", "application/n-triples", &nt);
    assert_eq!(ins.status, 200, "{}", ins.body);
    assert_eq!(json_num(&ins.body, "inserted"), 2);

    // Queries over HTTP see the delta write.
    let q = format!(
        "PREFIX rdfh: <{NS}>\nSELECT ?s WHERE {{ ?s rdfh:customer_name \"Customer#424242\" }}"
    );
    let hit = http_get(&addr, &format!("/query?query={}", urlencode(&q)), None);
    assert_eq!(hit.status, 200);
    assert!(hit.body.contains("customer424242"), "{}", hit.body);

    let status = http_get(&addr, "/status", None);
    assert!(
        json_num(&status.body, "n_delta_inserts") >= 2,
        "{}",
        status.body
    );

    // Delete one triple back out.
    let del_body = format!("<{NS}customer424242> <{NS}customer_mktsegment> \"BUILDING\" .\n");
    let del = http_post(
        &addr,
        "/update?action=delete",
        "application/n-triples",
        &del_body,
    );
    assert_eq!(del.status, 200, "{}", del.body);
    assert_eq!(json_num(&del.body, "deleted"), 1);

    assert_eq!(
        http_post(&addr, "/update?action=frobnicate", "text/plain", "x").status,
        400
    );
    server.shutdown();
}

/// The acceptance-criteria differential: a cancelled query provably stops
/// early. Run the same plan twice at the engine level — once to completion,
/// once with a pre-tripped token — and compare the `pages_scanned` work
/// counter. The cancelled run must stop within a bounded number of pages
/// (the first poll boundary), far below the full run's page count.
#[test]
fn cancelled_query_scans_bounded_pages() {
    let db = served_db();
    let store = db.clustered_store().unwrap();
    let schema = db.schema().unwrap();
    let dict = db.dict();
    let query = sordf_sparql::parse_sparql(&heavy_query(), &dict).unwrap();
    let storage = || StorageRef::Clustered {
        store: &store,
        schema: &schema,
    };

    let full_cx = ExecContext::new(db.buffer_pool(), &dict, storage(), ExecConfig::default());
    let results = sordf_engine::execute(&full_cx, &query);
    assert_eq!(results.len(), 1, "COUNT produces one row");
    let full_pages = full_cx.stats.snapshot().pages_scanned;
    assert!(
        full_pages >= 4,
        "need a multi-page workload, got {full_pages}"
    );

    let token = CancellationToken::new();
    token.cancel();
    let cancelled_cx = ExecContext::new(db.buffer_pool(), &dict, storage(), ExecConfig::default())
        .with_cancel(Some(token));
    let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        sordf_engine::execute(&cancelled_cx, &query)
    }))
    .unwrap_err();
    assert_eq!(
        sordf_engine::cancel::interrupted(payload.as_ref()),
        Some(StopReason::Cancelled)
    );
    let cancelled_pages = cancelled_cx.stats.snapshot().pages_scanned;
    assert!(
        cancelled_pages <= 2,
        "tripped token must stop within one poll boundary, scanned {cancelled_pages}"
    );
    assert!(cancelled_pages < full_pages);

    // The facade maps the same interrupt to the typed error.
    let err = db
        .execute(&QueryRequest::sparql(heavy_query()).timeout(Duration::ZERO))
        .unwrap_err();
    assert_eq!(err.code(), "timeout");
}
