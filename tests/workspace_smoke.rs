//! Workspace smoke test: the fastest end-to-end pass through the facade.
//!
//! Catches manifest/workspace regressions (a crate dropped from the umbrella,
//! a broken re-export, a facade API rename) with one cheap test instead of
//! relying on the slower differential suites or doctests alone.

use sordf::Database;

const BOOKS: &str = r#"
<http://ex/book1> <http://ex/has_author> <http://ex/author1> .
<http://ex/book1> <http://ex/in_year> "1996"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://ex/book1> <http://ex/isbn_no> "1-56619-909-3" .
<http://ex/book2> <http://ex/has_author> <http://ex/author2> .
<http://ex/book2> <http://ex/in_year> "1997"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://ex/book2> <http://ex/isbn_no> "1-56619-909-4" .
<http://ex/book3> <http://ex/has_author> <http://ex/author1> .
<http://ex/book3> <http://ex/in_year> "1998"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://ex/book3> <http://ex/isbn_no> "1-56619-909-5" .
"#;

#[test]
fn load_organize_query_sparql_and_sql() {
    let db = Database::in_temp_dir().unwrap();
    assert_eq!(db.load_ntriples(BOOKS).unwrap(), 9);
    assert_eq!(db.n_triples(), 9);

    let schema = db.self_organize().unwrap();
    assert_eq!(schema.classes.len(), 1, "books form one characteristic set");

    let sparql = db
        .query("SELECT ?b ?y WHERE { ?b <http://ex/in_year> ?y . ?b <http://ex/has_author> <http://ex/author1> . }")
        .unwrap();
    assert_eq!(sparql.len(), 2);

    let table = &db.schema().unwrap().classes[0].name;
    let sql = db
        .sql(&format!("SELECT in_year FROM {table} ORDER BY in_year"))
        .unwrap();
    assert_eq!(
        sql.canonical(&db.dict()),
        vec!["1996".to_string(), "1997".to_string(), "1998".to_string()]
    );
}

/// The umbrella crate must re-export every workspace library so downstream
/// code can reach any layer through one dependency.
#[test]
fn umbrella_reexports_every_crate() {
    // Touch one item per re-exported crate; compilation is the assertion.
    let _ = sordf_workspace::sordf_model::Term::iri("http://ex/x");
    let _ = sordf_workspace::sordf_schema::SchemaConfig::default();
    let _ = sordf_workspace::sordf_columnar::Bitmap::new(0);
    let _ = sordf_workspace::sordf_storage::TripleSet::new();
    let _ = sordf_workspace::sordf_engine::ExecConfig::default();
    let _ = sordf_workspace::sordf_sparql::parse_sparql;
    let _ = sordf_workspace::sordf_sql::compile_sql;
    let _ = sordf_workspace::sordf_rdfh::RdfhConfig::default();
    let _ = sordf_workspace::sordf_datagen::DirtyConfig::with_irregularity(0.0, 1);
    let _ = sordf_workspace::sordf::Database::in_temp_dir;
}
