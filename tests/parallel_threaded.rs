//! Threaded differential suite: the RDF-H star-join catalog run
//! concurrently from 4 threads — one shared database (one buffer pool),
//! per-thread query contexts — and through the morsel-parallel operators,
//! asserting results identical to the sequential reference across all three
//! storage generations. This is the "many queries, many cores, one pool"
//! serving scenario of the ROADMAP north star.

use sordf::{Database, ExecConfig, Generation, ParallelConfig, PlanScheme, QueryRequest};
use sordf_rdfh::{generate, query, RdfhConfig, ALL_QUERIES};

struct Rig {
    parse_order: Database,
    clustered: Database,
}

fn rig() -> Rig {
    let data = generate(&RdfhConfig::new(0.001));
    let parse_order = Database::in_temp_dir().unwrap();
    parse_order.load_terms(&data.triples).unwrap();
    parse_order.build_baseline().unwrap();
    parse_order.build_cs_tables().unwrap();
    let clustered = Database::in_temp_dir().unwrap();
    clustered.load_terms(&data.triples).unwrap();
    clustered.self_organize().unwrap();
    Rig {
        parse_order,
        clustered,
    }
}

/// The three storage generations under their natural plan scheme.
fn configs(rig: &Rig) -> Vec<(&'static str, &Database, Generation, ExecConfig)> {
    vec![
        (
            "baseline",
            &rig.parse_order,
            Generation::Baseline,
            ExecConfig {
                scheme: PlanScheme::Default,
                zonemaps: true,
                ..Default::default()
            },
        ),
        (
            "cs-parse-order",
            &rig.parse_order,
            Generation::CsParseOrder,
            ExecConfig {
                scheme: PlanScheme::RdfScanJoin,
                zonemaps: true,
                ..Default::default()
            },
        ),
        (
            "clustered",
            &rig.clustered,
            Generation::Clustered,
            ExecConfig {
                scheme: PlanScheme::RdfScanJoin,
                zonemaps: true,
                ..Default::default()
            },
        ),
    ]
}

#[test]
fn star_join_suite_is_stable_under_4_threads_and_parallel_operators() {
    let rig = rig();
    let configs = configs(&rig);

    // Sequential reference canonicals, computed single-threaded up front.
    let reference: Vec<Vec<Vec<String>>> = configs
        .iter()
        .map(|(_, db, generation, exec)| {
            ALL_QUERIES
                .iter()
                .map(|&qid| {
                    db.execute(
                        &QueryRequest::sparql(query(qid))
                            .generation(*generation)
                            .config(*exec),
                    )
                    .unwrap()
                    .results
                    .canonical(&db.dict())
                })
                .collect()
        })
        .collect();

    // 4 threads hammer the full suite concurrently: sequential execution
    // (shared pool, per-thread contexts) and the morsel-parallel executor
    // at 2 and 4 workers. Every result must equal the reference.
    std::thread::scope(|s| {
        for thread in 0..4usize {
            let configs = &configs;
            let reference = &reference;
            s.spawn(move || {
                // Stagger starting offsets so threads collide on different
                // pages of the shared pool.
                for step in 0..ALL_QUERIES.len() {
                    let qi = (thread + step) % ALL_QUERIES.len();
                    let qid = ALL_QUERIES[qi];
                    for (ci, (name, db, generation, exec)) in configs.iter().enumerate() {
                        let req = QueryRequest::sparql(query(qid))
                            .generation(*generation)
                            .config(*exec);
                        let seq = db
                            .execute(&req)
                            .unwrap_or_else(|e| panic!("{name}/{}: {e}", qid.name()))
                            .results;
                        assert_eq!(
                            seq.canonical(&db.dict()),
                            reference[ci][qi],
                            "thread {thread}: sequential {} on {name} diverged",
                            qid.name()
                        );
                        for workers in [2usize, 4] {
                            let par = ParallelConfig {
                                workers,
                                min_morsel_pages: 1,
                                min_morsel_rows: 64,
                            };
                            let rs = db
                                .execute(&req.clone().parallel(par))
                                .unwrap_or_else(|e| panic!("{name}/{}: {e}", qid.name()))
                                .results;
                            assert_eq!(
                                rs.canonical(&db.dict()),
                                reference[ci][qi],
                                "thread {thread}: parallel({workers}) {} on {name} diverged",
                                qid.name()
                            );
                        }
                    }
                }
            });
        }
    });

    // The shared pools survived the stampede with coherent internals, and
    // so did the storage generations and delta stores behind them.
    rig.parse_order.validate_invariants();
    rig.clustered.validate_invariants();

    // Under the armed lock-order checker the stampede must have recorded
    // real acquisition edges without tripping the cycle detector.
    #[cfg(feature = "lock_order_check")]
    assert!(
        parking_lot::lock_order::edge_count() > 0,
        "lock-order checker armed but no acquisition edges recorded"
    );
}

#[test]
fn parallel_query_facade_defaults_work() {
    let rig = rig();
    let rs_seq = rig.clustered.query(query(sordf_rdfh::QueryId::Q6)).unwrap();
    let rs_par = rig
        .clustered
        .execute(
            &QueryRequest::sparql(query(sordf_rdfh::QueryId::Q6))
                .parallel(ParallelConfig::with_workers(4)),
        )
        .unwrap()
        .results;
    assert_eq!(
        rs_seq.canonical(&rig.clustered.dict()),
        rs_par.canonical(&rig.clustered.dict())
    );
}
