//! The Table-I correctness backbone: every RDF-H catalog query returns the
//! same answer under all six plan/storage configurations.

use sordf::{Database, ExecConfig, Generation, PlanScheme, QueryRequest};
use sordf_rdfh::{generate, query, RdfhConfig, ALL_QUERIES};

struct Rig {
    parse_order: Database,
    clustered: Database,
}

fn rig() -> Rig {
    let data = generate(&RdfhConfig::new(0.001));
    let parse_order = Database::in_temp_dir().unwrap();
    parse_order.load_terms(&data.triples).unwrap();
    parse_order.build_baseline().unwrap();
    parse_order.build_cs_tables().unwrap();
    let clustered = Database::in_temp_dir().unwrap();
    clustered.load_terms(&data.triples).unwrap();
    clustered.self_organize().unwrap();
    Rig {
        parse_order,
        clustered,
    }
}

#[test]
fn all_catalog_queries_agree_across_configs() {
    let rig = rig();
    let configs: Vec<(&Database, Generation, PlanScheme, bool)> = vec![
        (
            &rig.parse_order,
            Generation::Baseline,
            PlanScheme::Default,
            false,
        ),
        (
            &rig.parse_order,
            Generation::CsParseOrder,
            PlanScheme::RdfScanJoin,
            false,
        ),
        (
            &rig.clustered,
            Generation::Clustered,
            PlanScheme::Default,
            false,
        ),
        (
            &rig.clustered,
            Generation::Clustered,
            PlanScheme::Default,
            true,
        ),
        (
            &rig.clustered,
            Generation::Clustered,
            PlanScheme::RdfScanJoin,
            false,
        ),
        (
            &rig.clustered,
            Generation::Clustered,
            PlanScheme::RdfScanJoin,
            true,
        ),
    ];
    for qid in ALL_QUERIES {
        let mut reference: Option<Vec<String>> = None;
        for (i, (db, generation, scheme, zonemaps)) in configs.iter().enumerate() {
            let exec = ExecConfig {
                scheme: *scheme,
                zonemaps: *zonemaps,
                ..Default::default()
            };
            let rs = db
                .execute(
                    &QueryRequest::sparql(query(qid))
                        .generation(*generation)
                        .config(exec),
                )
                .unwrap_or_else(|e| panic!("{} config {i}: {e}", qid.name()))
                .results;
            let canon = rs.canonical(&db.dict());
            match &reference {
                None => reference = Some(canon),
                Some(r) => assert_eq!(
                    &canon,
                    r,
                    "{} differs between config {i} and config 0",
                    qid.name()
                ),
            }
        }
        // Sanity: the benchmark queries must produce data at this SF.
        let rows = reference.unwrap();
        assert!(!rows.is_empty(), "{} returned nothing", qid.name());
    }
}

#[test]
fn q6_revenue_is_plausible() {
    let rig = rig();
    let rs = rig.clustered.query(query(sordf_rdfh::QueryId::Q6)).unwrap();
    assert_eq!(rs.len(), 1);
    let revenue: f64 = rs.render(&rig.clustered.dict())[0][0].parse().unwrap();
    // ~1500 orders * ~4 lineitems; the Q6 filters keep ~2% of lineitems,
    // each contributing price*discount ≈ 27000*0.06 ≈ 1600.
    assert!(revenue > 10_000.0, "revenue {revenue} suspiciously small");
}

#[test]
fn rdfscan_answers_q6_without_joins() {
    let rig = rig();
    let traced = rig
        .clustered
        .execute(
            &QueryRequest::sparql(query(sordf_rdfh::QueryId::Q6))
                .generation(Generation::Clustered)
                .config(ExecConfig {
                    scheme: PlanScheme::RdfScanJoin,
                    zonemaps: true,
                    ..Default::default()
                })
                .traced(true),
        )
        .unwrap();
    let stats = traced.stats.expect("traced");
    assert_eq!(stats.merge_joins, 0);
    assert_eq!(stats.hash_joins, 0);
    assert!(stats.rdf_scans >= 1);
}

#[test]
fn schema_discovers_tpch_tables() {
    let rig = rig();
    let schema = rig.clustered.schema().unwrap();
    for table in [
        "lineitem", "order", "customer", "part", "supplier", "nation", "region",
    ] {
        assert!(
            schema.class_by_name(table).is_some(),
            "missing emergent table {table}; got {:?}",
            schema.classes.iter().map(|c| &c.name).collect::<Vec<_>>()
        );
    }
    assert!(schema.coverage > 0.999, "RDF-H is fully regular");
    // FK chain: lineitem -> order -> customer -> nation -> region.
    let li = schema.class_by_name("lineitem").unwrap();
    let ok_col = li
        .columns
        .iter()
        .find(|c| c.name == "lineitem_orderkey")
        .unwrap();
    assert_eq!(schema.class(ok_col.fk.unwrap().target).name, "order");
}
