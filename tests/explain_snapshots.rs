//! Golden EXPLAIN snapshots: the optimizer's plan choice for every RDF-H
//! catalog query, per plan scheme, rendered without cost floats (operator
//! names, star order, join strategies, join variables) so the files are
//! stable across cost-model tuning that does not change the *choice*.
//!
//! A diff here means the optimizer picked a different plan — either an
//! intended cost-model improvement (regenerate with
//! `SORDF_UPDATE_GOLDEN=1 cargo test --test explain_snapshots`) or a
//! regression to catch.

use sordf::{Database, ExecConfig, PlanInfo, PlanScheme};
use sordf_rdfh::{generate, query, RdfhConfig, ALL_QUERIES};
use std::fmt::Write as _;
use std::path::PathBuf;

/// Float-free structural rendering of a plan: everything EXPLAIN commits to
/// except costs and cardinality estimates.
fn render(info: &PlanInfo) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "scheme={:?} stars={} order={:?} intra={} cross={}",
        info.scheme, info.n_stars, info.star_order, info.intra_star_joins, info.cross_star_joins
    );
    for (i, s) in info.steps.iter().enumerate() {
        let _ = writeln!(
            out,
            "step {i}: star {} subject=?{} props={} access={} join={} on={:?}",
            s.star, s.subject, s.n_props, s.access, s.join, s.join_vars
        );
    }
    out
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("explain")
}

#[test]
fn rdfh_plans_match_golden_snapshots() {
    let data = generate(&RdfhConfig::new(0.001));
    let db = Database::in_temp_dir().unwrap();
    db.load_terms(&data.triples).unwrap();
    db.self_organize().unwrap();

    let update = std::env::var("SORDF_UPDATE_GOLDEN").is_ok();
    let dir = golden_dir();
    let mut diffs = Vec::new();
    for qid in ALL_QUERIES {
        for (tag, scheme) in [
            ("default", PlanScheme::Default),
            ("rdfscan", PlanScheme::RdfScanJoin),
        ] {
            let info = db
                .explain_with(
                    query(qid),
                    sordf::Generation::Clustered,
                    ExecConfig {
                        scheme,
                        zonemaps: true,
                        ..Default::default()
                    },
                )
                .unwrap_or_else(|e| panic!("{} ({tag}): {e}", qid.name()));
            let got = render(&info);
            let path = dir.join(format!("{}_{tag}.txt", qid.name()));
            if update {
                std::fs::create_dir_all(&dir).unwrap();
                std::fs::write(&path, &got).unwrap();
                continue;
            }
            let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                panic!(
                    "{}: missing golden file (run with SORDF_UPDATE_GOLDEN=1 to create): {e}",
                    path.display()
                )
            });
            if got != want {
                diffs.push(format!(
                    "--- {} ---\nexpected:\n{want}\ngot:\n{got}",
                    path.display()
                ));
            }
        }
    }
    assert!(
        diffs.is_empty(),
        "EXPLAIN drifted from golden snapshots (SORDF_UPDATE_GOLDEN=1 regenerates):\n{}",
        diffs.join("\n")
    );
}
