//! Fig. 2 end-to-end: the emergent schema of the DBLP-like example graph
//! discovered through the public `Database` API.

use sordf::Database;

#[test]
fn fig2_structure_via_facade() {
    let db = Database::in_temp_dir().unwrap();
    db.load_terms(&sordf_datagen::dblp_like(40, 4)).unwrap();
    db.self_organize().unwrap();
    let schema = db.schema().unwrap();

    let inproc = schema
        .class_by_name("inproceeding")
        .expect("inproceeding table");
    let conf = schema
        .class_by_name("conference")
        .expect("conference table");
    assert_eq!(inproc.n_subjects, 40);
    assert_eq!(conf.n_subjects, 4);

    // The partOf foreign key of Fig. 2.
    let partof = inproc
        .columns
        .iter()
        .find(|c| c.name == "partof")
        .expect("partof column");
    let fk = partof.fk.expect("partOf is a foreign key");
    assert_eq!(schema.class(fk.target).name, "conference");
    assert!(fk.strength > 0.99);

    // Irregularities (webpage, homepage) are outside the relational view
    // but still stored and queryable.
    assert!(schema.coverage < 1.0);
    let rs = db
        .query("SELECT ?u WHERE { ?w <http://example.org/url> ?u . }")
        .unwrap();
    assert_eq!(rs.len(), 1);
    assert_eq!(rs.render(&db.dict())[0][0], "index.php");
}

#[test]
fn fig2_summary_contains_fk_closure() {
    let db = Database::in_temp_dir().unwrap();
    db.load_terms(&sordf_datagen::dblp_like(40, 4)).unwrap();
    db.self_organize().unwrap();
    let schema = db.schema().unwrap();
    let summary = sordf_schema::summarize(&schema, 1, &["inproceeding"]);
    let names: Vec<&str> = summary
        .selected
        .iter()
        .map(|&c| schema.class(c).name.as_str())
        .collect();
    assert!(names.contains(&"inproceeding"));
    assert!(
        names.contains(&"conference"),
        "FK closure pulls in conference"
    );
}

#[test]
fn multi_valued_creator_is_preserved() {
    // Fig. 2: inproc1 has creators {author3, author4}; both must be bound.
    let db = Database::in_temp_dir().unwrap();
    db.load_terms(&sordf_datagen::dblp_like(40, 4)).unwrap();
    db.self_organize().unwrap();
    let rs = db
        .query("SELECT ?a WHERE { <http://example.org/inproc1> <http://example.org/creator> ?a . }")
        .unwrap();
    assert_eq!(rs.len(), 2, "both creators must survive self-organization");
}
