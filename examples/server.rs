//! Serve a database over HTTP and drive it with a few requests: query
//! round-trips (JSON and TSV), a deliberately broken query (400 with a
//! caret), an over-tight deadline (408), a live insert through `/update`,
//! and a `/status` read — all against the embedded `sordf_server`.
//!
//! Run with: `cargo run --release --example server`

use sordf::Database;
use sordf_rdfh::{generate, RdfhConfig};
use sordf_server::{Server, ServerConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

fn send(addr: &str, request: &str) -> std::io::Result<String> {
    let mut s = TcpStream::connect(addr)?;
    s.write_all(request.as_bytes())?;
    // `Connection: close` in every request below: read to EOF.
    let mut out = String::new();
    s.read_to_string(&mut out)?;
    Ok(out)
}

fn get(addr: &str, target: &str, accept: &str) -> std::io::Result<String> {
    send(
        addr,
        &format!(
            "GET {target} HTTP/1.1\r\nHost: x\r\nAccept: {accept}\r\nConnection: close\r\n\r\n"
        ),
    )
}

fn first_line(resp: &str) -> &str {
    resp.lines().next().unwrap_or("")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = generate(&RdfhConfig::new(0.002));
    let db = Database::in_temp_dir()?;
    db.load_terms(&data.triples)?;
    db.self_organize()?;

    let server = Server::bind(
        Arc::new(db),
        ServerConfig {
            workers: 4,
            max_in_flight: 8,
            ..ServerConfig::default()
        },
    )?;
    let addr = server.local_addr()?.to_string();
    println!("serving on http://{addr}\n");

    // A query, urlencoded into the SPARQL-protocol GET form.
    let q = "PREFIX+rdfh%3A+%3Chttp%3A%2F%2Flod2.eu%2Fschemas%2Frdfh%23%3E%0A\
             SELECT+%3Fn+WHERE+%7B+%3Fc+rdfh%3Acustomer_mktsegment+%3Fn+%7D";

    let json = get(&addr, &format!("/query?query={q}"), "application/json")?;
    println!("JSON:   {}", first_line(&json));

    let tsv = get(
        &addr,
        &format!("/query?query={q}"),
        "text/tab-separated-values",
    )?;
    println!(
        "TSV:    {} ({} rows)",
        first_line(&tsv),
        tsv.lines()
            .skip_while(|l| !l.is_empty())
            .count()
            .saturating_sub(2)
    );

    // Parse errors come back as 400 with a caret pointing at the problem.
    let bad = get(&addr, "/query?query=SELECT+%3Fx+WHERE+%7B+broken", "*/*")?;
    println!("broken: {}", first_line(&bad));

    // A deadline the query cannot meet comes back as 408.
    let rushed = get(&addr, &format!("/query?query={q}&timeout_ms=0"), "*/*")?;
    println!("rushed: {}", first_line(&rushed));

    // Writes go through POST /update as N-Triples.
    let nt = "<http://lod2.eu/schemas/rdfh#customer77777> \
              <http://lod2.eu/schemas/rdfh#customer_name> \"Customer#77777\" .\n";
    let ins = send(
        &addr,
        &format!(
            "POST /update?action=insert HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{nt}",
            nt.len()
        ),
    )?;
    println!("insert: {}", first_line(&ins));

    let status = get(&addr, "/status", "application/json")?;
    println!("status: {}", first_line(&status));

    server.shutdown();
    println!("\ndrained and shut down cleanly");
    Ok(())
}
