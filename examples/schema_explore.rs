//! Fig. 2 walk-through: discover the structure hidden in a DBLP-like RDF
//! graph (inproceedings, conferences, a foreign key between them, and the
//! irregularities that stay outside the relational view), then summarize
//! the schema by keyword the way §II-A sketches for query sessions.
//!
//! Run with: `cargo run --release --example schema_explore`

use sordf::Database;
use sordf_schema::summarize;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let triples = sordf_datagen::dblp_like(60, 5);
    let db = Database::in_temp_dir()?;
    db.load_terms(&triples)?;
    db.self_organize()?;

    let schema = db.schema().unwrap();
    println!("== Fig. 2: structure recognized from the example RDF graph ==\n");
    println!("{}", db.ddl()?);
    println!(
        "coverage: {:.1}% of {} triples are regular; the rest (webpage etc.) \
         stays in the irregular triple table\n",
        schema.coverage * 100.0,
        db.n_triples()
    );

    // Schema summarization: keyword search + FK closure.
    println!("== summarized schema for keyword 'inproceeding' ==");
    let summary = summarize(&schema, 1, &["inproceeding"]);
    println!("{}", summary.render(&schema, &db.dict()));

    // And the discovered FK is queryable.
    let rs = db.query(
        r#"SELECT ?title ?ctitle WHERE {
            ?p <http://example.org/title> ?title .
            ?p <http://example.org/partOf> ?c .
            ?c <http://example.org/title> ?ctitle .
            ?c <http://example.org/issued> ?year .
            FILTER(?year >= 2011)
        } LIMIT 5"#,
    )?;
    println!("papers in conferences issued >= 2011 (first 5):");
    for row in rs.render(&db.dict()) {
        println!("  {} @ {}", row[0], row[1]);
    }
    Ok(())
}
