//! The update lifecycle: organize once, then keep writing — inserts and
//! deletes land in the delta store, snapshots pin history, drift statistics
//! accumulate, and `maybe_reorganize` folds the delta into a fresh
//! self-organized generation when a policy threshold fires.
//!
//! Run with: `cargo run --release --example updates`

use sordf::{Database, ReorgPolicy};
use sordf_model::Term;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = Database::in_temp_dir()?;

    // Bulk-load a small product catalog and self-organize it.
    let mut doc = String::new();
    for i in 0..40 {
        doc.push_str(&format!(
            "<http://ex/item{i}> <http://ex/price> \"{}\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n\
             <http://ex/item{i}> <http://ex/sold> \"1996-01-{:02}\"^^<http://www.w3.org/2001/XMLSchema#date> .\n",
            100 + i,
            (i % 28) + 1
        ));
    }
    db.load_ntriples(&doc)?;
    db.self_organize()?;
    println!(
        "organized {} triples into {} class(es)",
        db.n_triples(),
        db.schema().unwrap().classes.len()
    );

    let q = "SELECT ?s ?p WHERE { ?s <http://ex/price> ?p . FILTER(?p >= 135) }";
    println!("items priced >= 135: {}", db.query(q)?.len());

    // ---- writes: no column is rebuilt, queries see the merged store ------
    let snap = db.snapshot(); // pin the pre-write state

    // Two schema-conforming items and one drifting subject (new shape).
    db.insert_ntriples(
        r#"<http://ex/item90> <http://ex/price> "140"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://ex/item90> <http://ex/sold> "1996-02-01"^^<http://www.w3.org/2001/XMLSchema#date> .
<http://ex/item91> <http://ex/price> "150"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://ex/item91> <http://ex/sold> "1996-02-02"^^<http://www.w3.org/2001/XMLSchema#date> .
<http://ex/review1> <http://ex/rates> <http://ex/item90> .
<http://ex/review1> <http://ex/stars> "5"^^<http://www.w3.org/2001/XMLSchema#integer> ."#,
    )?;
    // Delete every triple of item3 (pattern delete: subject wildcard-free).
    let n = db.delete_matching(Some(&Term::iri("http://ex/item3")), None, None)?;
    println!("deleted {n} triples of item3");

    println!("items priced >= 135 (live): {}", db.query(q)?.len());
    println!(
        "items priced >= 135 (at snapshot): {}",
        db.query_snapshot(q, snap)?.len()
    );

    // ---- drift: how far has the live data diverged? ----------------------
    let drift = db.drift_stats();
    println!(
        "drift: {} inserts, {} tombstones, {} routed / {} unmatched subjects, \
         irregular ratio {:.3}",
        drift.n_delta_inserts,
        drift.n_tombstones,
        drift.matched_subjects,
        drift.unmatched_subjects,
        drift.irregular_ratio()
    );

    // ---- adaptive re-organization ----------------------------------------
    // The default policy waits for real volume; `eager` fires on any write.
    let outcome = db.maybe_reorganize(&ReorgPolicy::eager())?;
    println!(
        "reorganized: {} ({}); irregular ratio now {:.3}",
        outcome.fired,
        outcome.reason.as_deref().unwrap_or("-"),
        outcome.irregular_ratio_after.unwrap_or(0.0)
    );
    println!(
        "classes after reorg: {}",
        db.schema().unwrap().classes.len()
    );
    println!("items priced >= 135 (after reorg): {}", db.query(q)?.len());
    Ok(())
}
