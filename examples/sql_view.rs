//! Fig. 1's promise: the same store serves SPARQL *and* SQL. We load RDF-H
//! data, self-organize, and answer TPC-H Q6 twice — once as SPARQL over the
//! triples, once as SQL over the emergent relational schema — and check the
//! answers agree.
//!
//! Run with: `cargo run --release --example sql_view`

use sordf::Database;
use sordf_rdfh::{generate, RdfhConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = generate(&RdfhConfig::new(0.002));
    let db = Database::in_temp_dir()?;
    db.load_terms(&data.triples)?;
    db.self_organize()?;

    println!("emergent schema:\n{}", db.ddl()?);

    // TPC-H Q6 in SPARQL over the RDF view.
    let sparql = sordf_rdfh::query(sordf_rdfh::QueryId::Q6);
    let rs_sparql = db.query(sparql)?;

    // The same query in SQL over the emergent schema.
    let sql = "SELECT SUM(lineitem_extendedprice * lineitem_discount) AS revenue \
               FROM lineitem \
               WHERE lineitem_shipdate >= DATE '1994-01-01' AND lineitem_shipdate < DATE '1995-01-01' \
                 AND lineitem_discount BETWEEN 0.05 AND 0.07 AND lineitem_quantity < 24";
    let rs_sql = db.sql(sql)?;

    let a = rs_sparql.render(&db.dict());
    let b = rs_sql.render(&db.dict());
    println!("Q6 via SPARQL: revenue = {}", a[0][0]);
    println!("Q6 via SQL   : revenue = {}", b[0][0]);
    assert_eq!(a[0][0], b[0][0], "the two frontends must agree");
    println!("\nSPARQL and SQL agree — one store, two frontends (Fig. 1).");

    // A join through the discovered foreign key, in SQL.
    let rs = db.sql(
        "SELECT customer_mktsegment, COUNT(*) AS n, SUM(order_totalprice) AS volume \
         FROM order o JOIN customer c ON o.order_custkey = c.subject \
         GROUP BY customer_mktsegment ORDER BY volume DESC",
    )?;
    println!("\norder volume by market segment (SQL over FK join):");
    for row in rs.render(&db.dict()) {
        println!("  {:<12} n={:<6} volume={}", row[0], row[1], row[2]);
    }
    Ok(())
}
