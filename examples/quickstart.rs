//! Quickstart: load RDF, self-organize, query with SPARQL — the motivating
//! query from §I of the paper ("author and ISBN of books published in
//! 1996"), which RDFscan answers without self-joins.
//!
//! Run with: `cargo run --release --example quickstart`

use sordf::Database;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = Database::in_temp_dir()?;

    // A small library dataset, straight N-Triples.
    let mut doc = String::new();
    for i in 0..30 {
        let year = 1990 + (i % 10);
        doc.push_str(&format!(
            "<http://ex/book{i}> <http://ex/has_author> <http://ex/author{}> .\n\
             <http://ex/book{i}> <http://ex/in_year> \"{year}\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n\
             <http://ex/book{i}> <http://ex/isbn_no> \"1-56619-{i:03}-X\" .\n",
            i % 7
        ));
    }
    db.load_ntriples(&doc)?;
    println!("loaded {} triples", db.n_triples());

    // Self-organize: characteristic sets -> emergent schema -> subject
    // clustering -> CS-segment storage.
    db.self_organize()?;
    let schema = db.schema().unwrap();
    println!(
        "discovered {} class(es), coverage {:.1}%\n",
        schema.classes.len(),
        schema.coverage * 100.0
    );
    println!("SQL view of the data:\n{}", db.ddl()?);

    // The paper's intro query.
    let rs = db.query(
        r#"SELECT ?a ?n WHERE {
            ?b <http://ex/has_author> ?a .
            ?b <http://ex/in_year> "1996"^^<http://www.w3.org/2001/XMLSchema#integer> .
            ?b <http://ex/isbn_no> ?n }"#,
    )?;
    println!("books from 1996 ({} results):", rs.len());
    for row in rs.render(&db.dict()) {
        println!("  author={}  isbn={}", row[0], row[1]);
    }

    // Show the plan: no self-joins under RDFscan.
    let plan = db.explain(
        r#"SELECT ?a ?n WHERE {
            ?b <http://ex/has_author> ?a .
            ?b <http://ex/in_year> "1996"^^<http://www.w3.org/2001/XMLSchema#integer> .
            ?b <http://ex/isbn_no> ?n }"#,
    )?;
    println!("\n{}", plan.text);
    Ok(())
}
