//! Self-organization on dirty, web-crawl-like data: how coverage and the
//! emergent schema degrade (gracefully) as irregularity grows — the paper's
//! §II-D outlook experiment.
//!
//! Run with: `cargo run --release --example dirty_data`

use sordf::Database;
use sordf_datagen::{dirty, DirtyConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<14} {:>9} {:>9} {:>10} {:>10}",
        "irregularity", "triples", "classes", "coverage", "irregular"
    );
    for irregularity in [0.0, 0.15, 0.3, 0.5] {
        let triples = dirty(&DirtyConfig::with_irregularity(irregularity, 1_500));
        let db = Database::in_temp_dir()?;
        db.load_terms(&triples)?;
        db.self_organize()?;
        let schema = db.schema().unwrap();
        let store = db.clustered_store().unwrap();
        println!(
            "{:<14.2} {:>9} {:>9} {:>9.1}% {:>10}",
            irregularity,
            db.n_triples(),
            schema.classes.len(),
            schema.coverage * 100.0,
            store.irregular.len(),
        );
    }
    println!("\nEven at 50% noise the majority of triples land in relational");
    println!("columns; the irregular remainder stays queryable via the triple");
    println!("table, so no data is ever lost to the schema.");
    Ok(())
}
